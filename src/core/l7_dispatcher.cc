#include "src/core/l7_dispatcher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/core/handshake_engine.h"
#include "src/core/splice_engine.h"
#include "src/tls/tls.h"

namespace yoda {
namespace {

// True when this flow's client stream should be inspected for HTTP/1.1
// re-switching (keep-alive connections can carry requests for different
// backends, §5.2).
bool WantsInspection(const http::Request& req) { return req.KeepAlive(); }

}  // namespace

sim::Duration L7Dispatcher::RuleScanDelay(int rules_scanned) const {
  return ctx_->cfg->rule_scan_base_delay + ctx_->cfg->rule_scan_per_rule_delay * rules_scanned;
}

void L7Dispatcher::OnClientData(const FlowKey& key, LocalFlow& flow, VipState& vip,
                                const net::Packet& p) {
  if (flow.phase() == FlowPhase::kSynReceived) {
    flow.stalled.push_back(p);  // storage-a still in flight.
    return;
  }
  if (p.fin()) {
    // Client aborted before the server connection existed.
    ctx_->CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }
  if (!p.payload.empty()) {
    // Reassemble the header bytes in order; duplicates are ignored. Note: we
    // deliberately do NOT ACK (paper: the header fits the initial window, so
    // the client keeps retransmitting it until the *server's* ACK is
    // tunneled back — which is what makes connection-phase takeover work).
    if (net::SeqGt(p.seq + static_cast<std::uint32_t>(p.payload.size()), flow.assembled_end)) {
      flow.pending_segments[p.seq] = p.payload;
    }
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = flow.pending_segments.begin(); it != flow.pending_segments.end();) {
        const std::uint32_t seg_seq = it->first;
        const auto len = static_cast<std::uint32_t>(it->second.size());
        if (net::SeqLeq(seg_seq, flow.assembled_end) &&
            net::SeqGt(seg_seq + len, flow.assembled_end)) {
          const std::uint32_t skip = flow.assembled_end - seg_seq;
          flow.assembled.append(it->second.view().substr(skip));
          flow.assembled_end += len - skip;
          it = flow.pending_segments.erase(it);
          progressed = true;
        } else if (net::SeqLeq(seg_seq + len, flow.assembled_end)) {
          it = flow.pending_segments.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (flow.tls_active) {
      ctx_->handshake->TlsConnectionPhase(key, flow, vip);
    } else {
      flow.parser = http::RequestParser();
      flow.parser.Feed(flow.assembled);
    }
  }
  if (flow.parser.HaveHeaders() && flow.fsm.awaiting_header()) {
    TrySelectAndConnect(key, flow, vip);
  }
}

std::optional<rules::Selection> L7Dispatcher::SelectBackend(VipState& vip,
                                                            const http::Request& req) {
  rules::SelectionContext sctx;
  sctx.rng = ctx_->rng;
  sctx.sticky = &vip.sticky;
  sctx.is_healthy = [this](const rules::Backend& b) {
    auto it = ctx_->backend_health->find(b.ip);
    return it == ctx_->backend_health->end() || it->second;
  };
  sctx.load_of = [this](const rules::Backend& b) {
    auto it = ctx_->backend_load->find(b.ip);
    return it == ctx_->backend_load->end() ? 0 : it->second;
  };
  auto sel = vip.table.Select(req, sctx);
  if (sel) {
    ctx_->ctr->selections->Inc();
    ctx_->ctr->rules_scanned_total->Add(static_cast<std::uint64_t>(sel->rules_scanned));
    ctx_->cpu->ChargeRuleScan(sel->rules_scanned);
  }
  return sel;
}

void L7Dispatcher::BindStickyIfNeeded(VipState& vip, const http::Request& req,
                                      const rules::Backend& b) {
  for (const rules::Rule& r : vip.table.rules()) {
    if (r.action.type != rules::ActionType::kStickyTable) {
      continue;
    }
    if (!r.match.Matches(req)) {
      continue;
    }
    auto cookies = req.Cookies();
    auto it = cookies.find(r.action.sticky_cookie);
    if (it != cookies.end() && !vip.sticky.Find(it->second)) {
      vip.sticky.Bind(it->second, b);
    }
  }
}

void L7Dispatcher::TrySelectAndConnect(const FlowKey& key, LocalFlow& flow, VipState& vip) {
  flow.started = ctx_->sim->now();  // Fig 9 "Connection" measurement starts here.
  auto sel = SelectBackend(vip, flow.parser.request());
  if (!sel) {
    ctx_->ctr->no_backend_resets->Inc();
    net::Packet rst;
    rst.src = key.vip;
    rst.sport = key.vip_port;
    rst.dst = key.client_ip;
    rst.dport = key.client_port;
    rst.seq = flow.st.lb_isn + 1;
    rst.ack = flow.assembled_end;
    rst.flags = net::kRst | net::kAck;
    ctx_->Emit(std::move(rst));
    ctx_->Trace(key, obs::EventType::kFlowReset,
                static_cast<std::uint64_t>(obs::FlowResetReason::kNoBackend));
    ctx_->CleanupFlow(key, /*remove_from_store=*/true);
    return;
  }
  flow.fsm.Transition(FlowPhase::kSelecting);  // Guarded by awaiting_header().
  ctx_->Trace(key, obs::EventType::kBackendSelected,
              static_cast<std::uint64_t>(sel->rules_scanned));
  ctx_->Trace(key, obs::EventType::kBackendPinned, sel->backend.ip);
  BindStickyIfNeeded(vip, flow.parser.request(), sel->backend);
  flow.st.backend_ip = sel->backend.ip;
  flow.st.backend_port = sel->backend.port;
  (*ctx_->backend_load)[sel->backend.ip] += 1;
  for (const rules::Backend& m : sel->mirrors) {
    flow.mirror_legs.push_back(LocalFlow::MirrorLeg{m.ip, m.port, false, 0});
  }

  // The rule scan and header handling add the Fig 6 / Fig 9 latency.
  const sim::Duration delay =
      ctx_->cfg->cpu_costs.connection_delay + RuleScanDelay(sel->rules_scanned);
  ctx_->sim->After(delay, [this, key]() {
    LocalFlow* f = ctx_->flows->Find(key);
    if (f == nullptr || !ctx_->alive()) {
      return;
    }
    ctx_->handshake->SendServerSyn(key, *f);
  });
}

void L7Dispatcher::ForwardRequestToServer(const FlowKey& key, LocalFlow& flow) {
  ctx_->Trace(key, obs::EventType::kRequestForwarded);
  if (flow.started != 0) {
    if (ctx_->stage->connection_phase_ms != nullptr) {
      ctx_->stage->connection_phase_ms->Add(sim::ToMillis(ctx_->sim->now() - flow.started));
    }
    flow.started = 0;  // Count the initial leg once (not re-switches).
  }
  // Handshake-completing ACK, carrying the buffered client bytes (the HTTP
  // request), sequence-aligned with the client's own numbers. For TLS flows
  // the server-side stream is [session ticket][encrypted appdata verbatim].
  std::string tls_data;
  if (flow.tls_active) {
    VipState* vip = ctx_->FindVip(key.vip);
    if (vip != nullptr && vip->tls) {
      tls_data = tls::EncodeRecord({tls::RecordType::kSessionTicket,
                                    tls::SealTicket(flow.tls_session_key,
                                                    vip->tls->service_key)});
      tls_data += flow.assembled.substr(flow.tls_handshake_len);
    }
  }
  // Note (TLS): a client retransmission that spans the handshake/appdata
  // boundary would, under the c2s delta, overlap the ticket's sequence range
  // at the server with stale bytes. This only matters if the ticket packet
  // itself was lost; a production implementation would retransmit its own
  // injected bytes. The simulator's LB->server hop is loss-free by default.
  const std::string& data = flow.tls_active ? tls_data : flow.assembled;
  std::uint32_t seq = flow.st.client_isn + 1;
  std::size_t off = 0;
  bool first = true;
  do {
    const std::size_t len = std::min<std::size_t>(ctx_->cfg->mss, data.size() - off);
    net::Packet pkt;
    pkt.src = key.vip;
    pkt.sport = key.client_port;
    pkt.dst = flow.st.backend_ip;
    pkt.dport = flow.st.backend_port;
    pkt.seq = seq;
    pkt.ack = flow.st.server_isn + 1;
    pkt.flags = net::kAck;
    pkt.payload = data.substr(off, len);
    if (off + len >= data.size()) {
      pkt.flags |= net::kPsh;
    }
    if (first) {
      ctx_->Emit(std::move(pkt));  // The ACK itself is control traffic.
      first = false;
    } else {
      ctx_->EmitForwarded(std::move(pkt));
    }
    seq += static_cast<std::uint32_t>(len);
    off += len;
  } while (off < data.size());

  // Initialise (or re-arm after a re-switch) HTTP/1.1 inspection state.
  // TLS flows tunnel ciphertext, so re-switch inspection is unavailable.
  if (ctx_->cfg->http11_reswitch && !flow.tls_active &&
      (flow.inspect_enabled ||
       (flow.parser.HaveHeaders() && WantsInspection(flow.parser.request())))) {
    flow.inspect_enabled = true;
    flow.inspect_next_seq = flow.st.client_isn + 1 +
                            static_cast<std::uint32_t>(flow.assembled.size());
    flow.request_start_seq = flow.inspect_next_seq;
    flow.pending_request.clear();
    flow.inspect_parser = http::RequestParser();
    flow.outstanding_requests = 1;
  } else {
    flow.inspect_next_seq = 0;  // Inspection disabled for this flow.
  }
}

void L7Dispatcher::InspectClientStream(const FlowKey& key, LocalFlow& flow, VipState& vip,
                                       const net::Packet& p) {
  // In-order inspection: the current request's bytes are buffered from
  // request_start_seq and only forwarded once the request is complete and
  // routed — that is what makes switching the backend per request possible.
  const auto len = static_cast<std::uint32_t>(p.payload.size());
  if (net::SeqLt(p.seq, flow.inspect_next_seq) &&
      net::SeqLeq(p.seq + len, flow.inspect_next_seq)) {
    // Entirely old. Bytes belonging to the current server leg (at or above
    // its rebased ISN) are retransmissions the server should re-ack; tunnel
    // them. Bytes from a pre-re-switch leg were acked by the old server and
    // are dropped.
    if (net::SeqGeq(p.seq, flow.st.client_isn + 1) &&
        net::SeqLt(p.seq, flow.request_start_seq)) {
      net::Packet out = p;
      out.src = key.vip;
      out.sport = key.client_port;
      out.dst = flow.st.backend_ip;
      out.dport = flow.st.backend_port;
      out.seq = p.seq + flow.st.seq_delta_c2s;
      out.ack = p.ack - flow.st.seq_delta_s2c;
      out.encap_dst = 0;
      ctx_->EmitForwarded(std::move(out));
    }
    return;
  }
  if (net::SeqGt(p.seq, flow.inspect_next_seq)) {
    flow.pending_segments[p.seq] = p.payload;  // Future data; hold.
    return;
  }
  // Consume this segment (trimming any old prefix) plus any now-contiguous
  // buffered segments.
  std::string fresh(p.payload.view().substr(flow.inspect_next_seq - p.seq));
  flow.inspect_next_seq += static_cast<std::uint32_t>(fresh.size());
  for (auto it = flow.pending_segments.begin(); it != flow.pending_segments.end();) {
    const std::uint32_t s = it->first;
    const auto l = static_cast<std::uint32_t>(it->second.size());
    if (net::SeqLeq(s, flow.inspect_next_seq) && net::SeqGt(s + l, flow.inspect_next_seq)) {
      fresh += it->second.view().substr(flow.inspect_next_seq - s);
      flow.inspect_next_seq = s + l;
      it = flow.pending_segments.erase(it);
    } else if (net::SeqLeq(s + l, flow.inspect_next_seq)) {
      it = flow.pending_segments.erase(it);
    } else {
      ++it;
    }
  }
  flow.pending_request += fresh;

  flow.inspect_parser.Feed(fresh);
  if (flow.inspect_parser.status() == http::ParseStatus::kComplete) {
    http::Request req = flow.inspect_parser.TakeRequest();
    auto sel = SelectBackend(vip, req);
    if (sel) {
      BindStickyIfNeeded(vip, req, sel->backend);
    }
    if (sel &&
        !(sel->backend.ip == flow.st.backend_ip &&
          sel->backend.port == flow.st.backend_port) &&
        flow.outstanding_requests == 0) {
      // Different backend and no response in flight: switch (§5.2). The
      // buffered request is replayed to the new server on establishment.
      ReSwitch(key, flow, vip, sel->backend);
      if (p.fin()) {
        flow.fin_from_client = true;  // FIN is relayed after the new leg.
      }
      return;
    }
    // Same backend (or response outstanding): forward the buffered request
    // on the current connection, sequence-aligned.
    std::uint32_t seq = flow.request_start_seq;
    std::size_t off = 0;
    while (off < flow.pending_request.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(ctx_->cfg->mss, flow.pending_request.size() - off);
      net::Packet out;
      out.src = key.vip;
      out.sport = key.client_port;
      out.dst = flow.st.backend_ip;
      out.dport = flow.st.backend_port;
      out.seq = seq + flow.st.seq_delta_c2s;
      out.ack = p.ack - flow.st.seq_delta_s2c;
      out.flags = net::kAck | net::kPsh;
      out.payload = flow.pending_request.substr(off, chunk);
      ctx_->EmitForwarded(std::move(out));
      seq += static_cast<std::uint32_t>(chunk);
      off += chunk;
    }
    flow.outstanding_requests += 1;
    // Pipelined clients may have packed several requests into this batch;
    // they all go to the same backend (re-switch requires outstanding == 0).
    while (flow.inspect_parser.status() == http::ParseStatus::kComplete) {
      http::Request extra = flow.inspect_parser.TakeRequest();
      auto extra_sel = SelectBackend(vip, extra);
      if (extra_sel) {
        BindStickyIfNeeded(vip, extra, extra_sel->backend);
      }
      flow.outstanding_requests += 1;
      flow.st.pipeline_request_ends.push_back(flow.inspect_next_seq - flow.st.client_isn - 1);
    }
    flow.pending_request.clear();
    flow.request_start_seq = flow.inspect_next_seq;
    // Record the request boundary for pipelined-response ordering and update
    // TCPStore so a takeover instance knows the order (§5.2). The write is
    // non-gating, so it goes through the coalescing write-behind path.
    flow.st.pipeline_request_ends.push_back(flow.inspect_next_seq - flow.st.client_isn - 1);
    ctx_->store->Refresh(flow.st);
  }
  if (p.fin()) {
    flow.fin_from_client = true;
    ctx_->Trace(key, obs::EventType::kFin, 0);
    net::Packet fin;
    fin.src = key.vip;
    fin.sport = key.client_port;
    fin.dst = flow.st.backend_ip;
    fin.dport = flow.st.backend_port;
    fin.seq = flow.inspect_next_seq + flow.st.seq_delta_c2s;
    fin.ack = p.ack - flow.st.seq_delta_s2c;
    fin.flags = net::kFin | net::kAck;
    ctx_->EmitForwarded(std::move(fin));
    ctx_->splice->MaybeScheduleCleanup(key, flow);
  }
}

void L7Dispatcher::ReSwitch(const FlowKey& key, LocalFlow& flow, VipState& vip,
                            const rules::Backend& new_backend) {
  ctx_->ctr->reswitches->Inc();
  ctx_->Trace(key, obs::EventType::kReSwitch, new_backend.ip);
  // Close the old server connection and drop its return pin.
  const net::FiveTuple old_side{flow.st.backend_ip, key.vip, flow.st.backend_port,
                                key.client_port};
  net::Packet rst;
  rst.src = key.vip;
  rst.sport = key.client_port;
  rst.dst = flow.st.backend_ip;
  rst.dport = flow.st.backend_port;
  rst.seq = flow.request_start_seq + flow.st.seq_delta_c2s;
  rst.flags = net::kRst;
  ctx_->Emit(std::move(rst));
  ctx_->fabric->UnregisterSnat(old_side);
  ctx_->flows->UnbindServer(old_side);
  const FlowState old_state = flow.st;
  ctx_->store->Remove(old_state);

  (*ctx_->backend_load)[flow.st.backend_ip] -= 1;
  (*ctx_->backend_load)[new_backend.ip] += 1;

  // Re-enter the connection phase against the new backend, reusing the
  // normal plumbing: the buffered request becomes `assembled`, and the SYN's
  // ISN is rebased to (request start - 1) so the client->server sequence
  // delta stays zero on the new leg. The server->client delta is derived
  // from client_facing_nxt when the new SYN-ACK arrives. SendServerSyn moves
  // the FSM across the kEstablished -> kServerSynSent re-switch edge.
  flow.st.backend_ip = new_backend.ip;
  flow.st.backend_port = new_backend.port;
  flow.st.client_isn = flow.request_start_seq - 1;
  flow.st.stage = FlowStage::kConnection;
  flow.server_syn_attempts = 0;
  flow.assembled = std::move(flow.pending_request);
  flow.pending_request.clear();
  flow.assembled_end = flow.inspect_next_seq;
  flow.st.pipeline_request_ends.clear();
  ctx_->Trace(key, obs::EventType::kBackendPinned, new_backend.ip);
  // The old signed token's claims (old backend, old delta) are dead; re-mint
  // from the rebased connection-phase state so the client echoes a current
  // one while the new leg connects.
  ctx_->RefreshCookie(key, flow);
  ctx_->handshake->SendServerSyn(key, flow);
  (void)vip;
}

}  // namespace yoda
