#include "src/core/pipeline.h"

#include <algorithm>
#include <utility>

namespace yoda {

void PipelineContext::Trace(const FlowKey& key, obs::EventType type, std::uint64_t detail) {
  if (recorder != nullptr) {
    recorder->Record(obs::FlowId{key.vip, key.vip_port, key.client_ip, key.client_port},
                     sim->now(), type, self_ip, detail);
  }
}

void PipelineContext::Emit(net::Packet p) { net->Send(std::move(p)); }

std::uint64_t PipelineContext::RefreshCookie(const FlowKey& key, LocalFlow& flow) {
  if (flow.store_mode != StoreMode::kStateless) {
    return 0;
  }
  const VipState* vip = FindVip(key.vip);
  const std::uint8_t epoch =
      vip != nullptr ? static_cast<std::uint8_t>(vip->store_epoch & 0xff) : 0;
  flow.cookie = MintFlowCookie(flow.st, epoch, cfg->cookie_secret);
  return flow.cookie;
}

void PipelineContext::EmitForwarded(net::Packet p) {
  cpu->ChargePacket();
  ctr->packets_tunneled->Inc();
  sim->After(cfg->cpu_costs.forward_delay, [this, p = std::move(p)]() mutable {
    if (alive()) {
      net->Send(std::move(p));
    }
  });
}

bool PipelineContext::Advance(const FlowKey& key, LocalFlow& flow, FlowPhase to) {
  if (flow.fsm.TryTransition(to)) {
    return true;
  }
  ctr->bad_transition_resets->Inc();
  ResetFlowToClient(key, obs::FlowResetReason::kBadTransition);
  return false;
}

void PipelineContext::ResetFlowToClient(const FlowKey& key, obs::FlowResetReason reason) {
  // An explicit RST beats a silent drop: the client learns immediately
  // instead of retransmitting into a void until its own timers expire.
  LocalFlow* f = flows->Find(key);
  net::Packet rst;
  rst.src = key.vip;
  rst.sport = key.vip_port;
  rst.dst = key.client_ip;
  rst.dport = key.client_port;
  rst.flags = net::kRst | net::kAck;
  if (f != nullptr && !f->stalled.empty()) {
    const net::Packet& last = f->stalled.back();
    rst.seq = last.ack;
    rst.ack = last.seq + last.SeqSpace();
  } else if (f != nullptr) {
    rst.seq = f->client_facing_nxt != 0 ? f->client_facing_nxt : f->st.lb_isn + 1;
    rst.ack = f->assembled_end;
  }
  Emit(std::move(rst));
  Trace(key, obs::EventType::kFlowReset, static_cast<std::uint64_t>(reason));
  CleanupFlow(key, /*remove_from_store=*/true);
}

void PipelineContext::CleanupFlow(const FlowKey& key, bool remove_from_store) {
  LocalFlow* flow = flows->Find(key);
  if (flow == nullptr) {
    return;
  }
  flow->server_syn_timer.Cancel();
  for (const LocalFlow::MirrorLeg& leg : flow->mirror_legs) {
    const net::FiveTuple leg_side{leg.ip, key.vip, leg.port, key.client_port};
    fabric->UnregisterSnat(leg_side);
    flows->UnbindServer(leg_side);
  }
  if (flow->st.stage == FlowStage::kTunneling || flow->fsm.selection_committed()) {
    const net::FiveTuple server_side{flow->st.backend_ip, key.vip, flow->st.backend_port,
                                     key.client_port};
    fabric->UnregisterSnat(server_side);
    flows->UnbindServer(server_side);
    auto it = backend_load->find(flow->st.backend_ip);
    if (it != backend_load->end() && flow->established()) {
      it->second = std::max(0, it->second - 1);
    }
  }
  if (remove_from_store && flow->fsm.syn_state_stored()) {
    store->Remove(flow->st, RemovalMode(*flow));
  }
  flow->fsm.Transition(FlowPhase::kClosed);
  Trace(key, obs::EventType::kCleanup);
  flows->Erase(key);
}

}  // namespace yoda
