#include "src/core/assignment_engine.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace yoda {

namespace {

// Maps a vip -> pool-of-ips view onto the index space of `instance_order` /
// `vip_order`. Unknown ips (dead instances) are dropped; a VIP in all-to-all
// mode (`nullptr` pool) expands to every instance when `expand_all_to_all`.
assign::Assignment IndexAssignment(const ControlState& state,
                                   const std::vector<net::IpAddr>& vip_order,
                                   const std::vector<net::IpAddr>& instance_order,
                                   bool expand_all_to_all) {
  std::map<net::IpAddr, int> index_of;
  for (std::size_t y = 0; y < instance_order.size(); ++y) {
    index_of[instance_order[y]] = static_cast<int>(y);
  }
  assign::Assignment a;
  a.vip_instances.resize(vip_order.size());
  for (std::size_t v = 0; v < vip_order.size(); ++v) {
    const std::vector<net::IpAddr>* pool = state.DesiredPool(vip_order[v]);
    if (pool == nullptr) {
      if (expand_all_to_all) {
        for (std::size_t y = 0; y < instance_order.size(); ++y) {
          a.vip_instances[v].push_back(static_cast<int>(y));
        }
      }
      continue;
    }
    for (net::IpAddr ip : *pool) {
      auto it = index_of.find(ip);
      if (it != index_of.end()) {
        a.vip_instances[v].push_back(it->second);
      }
    }
    std::sort(a.vip_instances[v].begin(), a.vip_instances[v].end());
  }
  return a;
}

bool AnyAssigned(const assign::Assignment& a) {
  for (const auto& row : a.vip_instances) {
    if (!row.empty()) {
      return true;
    }
  }
  return false;
}

}  // namespace

assign::Assignment AssignmentEngine::AlignedPrevious(const assign::Problem& problem) const {
  assign::Assignment aligned;
  aligned.vip_instances.resize(problem.vips.size());
  if (!have_prev_) {
    return aligned;
  }
  std::map<int, std::size_t> row_of;
  for (std::size_t v = 0; v < prev_ids_.size(); ++v) {
    row_of[prev_ids_[v]] = v;
  }
  for (std::size_t v = 0; v < problem.vips.size(); ++v) {
    auto it = row_of.find(problem.vips[v].id);
    if (it != row_of.end() && it->second < prev_.vip_instances.size()) {
      aligned.vip_instances[v] = prev_.vip_instances[it->second];
    }
  }
  return aligned;
}

AssignmentEngine::Round AssignmentEngine::PlanRound(const assign::Problem& problem,
                                                    bool limit_transient,
                                                    bool limit_migration) {
  Round round;
  const assign::Assignment previous = AlignedPrevious(problem);
  const bool usable_prev = have_prev_ && AnyAssigned(previous);

  assign::SolveOptions opts;
  if (usable_prev) {
    opts.previous = &previous;
    opts.limit_transient = limit_transient;
    opts.limit_migration = limit_migration;
  }
  round.result = solver_.Solve(problem, opts);
  round.feasible = round.result.feasible;
  round.note = round.result.note;
  if (!round.feasible) {
    return round;
  }
  round.plan = assign::PlanUpdate(problem, previous, round.result.assignment);
  round.steps = assign::ExecutionOrder(round.plan);

  prev_ = round.result.assignment;
  prev_ids_.clear();
  for (const assign::VipSpec& spec : problem.vips) {
    prev_ids_.push_back(spec.id);
  }
  have_prev_ = true;
  return round;
}

AssignmentEngine::FleetRound AssignmentEngine::PlanFleetRound(
    const ControlState& state, const std::vector<YodaInstance*>& active,
    const std::map<net::IpAddr, VipDemand>& demand, const AssignmentRoundConfig& cfg) {
  FleetRound fleet;
  if (active.empty() || state.vips().empty()) {
    fleet.round.note = "no active instances or no vips";
    return fleet;
  }
  for (const YodaInstance* i : active) {
    fleet.instance_order.push_back(i->ip());
  }

  // Build the Fig 7 problem over the currently active instances. Row order
  // is the sorted VIP address order so consecutive rounds line up for the
  // Eq 4-7 update constraints.
  assign::Problem problem;
  problem.traffic_capacity = cfg.traffic_capacity;
  problem.rule_capacity = cfg.rule_capacity;
  problem.migration_limit = cfg.migration_limit;
  problem.max_instances = static_cast<int>(active.size());
  for (const auto& [vip, entry] : state.vips()) {
    auto dit = demand.find(vip);
    const VipDemand d = dit == demand.end() ? VipDemand{} : dit->second;
    assign::VipSpec spec;
    spec.id = static_cast<int>(vip);
    spec.traffic = d.traffic;
    spec.rules = static_cast<int>(entry.rules.size());
    spec.replicas = std::min(d.replicas, static_cast<int>(active.size()));
    // When the fleet caps the replica count, the failure headroom scales
    // down proportionally (keeping the requested o_v = f_v/n_v ratio).
    spec.failures = d.replicas > 0 ? spec.replicas * d.failures / d.replicas : 0;
    spec.failures = std::min(spec.failures, spec.replicas - 1);
    // Shed residual headroom rather than declare the round infeasible.
    while (spec.failures > 0 && spec.ShareAfterFailures() > cfg.traffic_capacity) {
      --spec.failures;
    }
    problem.vips.push_back(spec);
    fleet.vip_order.push_back(vip);
  }

  // The solver's continuity baseline is the previously SOLVED assignment
  // (VIPs still in all-to-all bootstrap contribute nothing); the executed
  // plan's baseline is what is actually programmed, all-to-all expanded —
  // so the first round's plan explicitly removes the bootstrap members.
  const assign::Assignment solver_prev =
      IndexAssignment(state, fleet.vip_order, fleet.instance_order, false);
  const assign::Assignment plan_prev =
      IndexAssignment(state, fleet.vip_order, fleet.instance_order, true);

  assign::SolveOptions opts;
  if (AnyAssigned(solver_prev)) {
    opts.previous = &solver_prev;
    opts.limit_transient = true;
    opts.limit_migration = true;
  }
  fleet.round.result = solver_.Solve(problem, opts);
  fleet.round.feasible = fleet.round.result.feasible;
  fleet.round.note = fleet.round.result.note.empty()
                         ? problem.Summary()
                         : fleet.round.result.note + " [" + problem.Summary() + "]";
  if (!fleet.round.feasible) {
    return fleet;
  }
  fleet.round.plan = assign::PlanUpdate(problem, plan_prev, fleet.round.result.assignment);
  fleet.round.steps = assign::ExecutionOrder(fleet.round.plan);

  for (std::size_t v = 0; v < fleet.vip_order.size(); ++v) {
    std::vector<net::IpAddr>& pool = fleet.pools[fleet.vip_order[v]];
    for (int y : fleet.round.result.assignment.vip_instances[v]) {
      pool.push_back(fleet.instance_order[static_cast<std::size_t>(y)]);
    }
    specs_[fleet.vip_order[v]] = problem.vips[v];
  }
  last_capacity_ = cfg.traffic_capacity;
  last_rule_capacity_ = cfg.rule_capacity;
  return fleet;
}

std::map<net::IpAddr, VipDemand> AssignmentEngine::DemandFromCounters(
    const ControlState& state, const std::vector<YodaInstance*>& active,
    double interval_seconds, const DemandDerivationConfig& cfg) {
  // Aggregate per-VIP demand from every instance's counters (new
  // connections per second over the interval).
  std::map<net::IpAddr, double> conn_rate;
  for (YodaInstance* inst : active) {
    for (const auto& [vip, traffic] : inst->DrainTrafficCounters()) {
      conn_rate[vip] += static_cast<double>(traffic.new_connections);
    }
  }
  std::map<net::IpAddr, VipDemand> demand;
  for (const auto& [vip, entry] : state.vips()) {
    VipDemand d;
    auto it = conn_rate.find(vip);
    const double rate = it == conn_rate.end() ? 0.0 : it->second / interval_seconds;
    d.traffic = std::max(rate, 0.01 * cfg.traffic_capacity);
    const int wanted = static_cast<int>(
        std::ceil(cfg.replication_factor * d.traffic / cfg.traffic_capacity));
    d.replicas = std::max(1, wanted);
    d.failures = static_cast<int>(d.replicas * cfg.oversubscription);
    if (d.failures >= d.replicas) {
      d.failures = d.replicas - 1;
    }
    demand[vip] = d;
  }
  return demand;
}

std::vector<net::IpAddr> AssignmentEngine::UnderHeadroom(const ControlState& state) const {
  std::vector<net::IpAddr> out;
  for (const auto& [vip, spec] : specs_) {
    if (!state.HasVip(vip)) {
      continue;
    }
    const std::vector<net::IpAddr>* pool = state.DesiredPool(vip);
    if (pool == nullptr) {
      continue;  // All-to-all: headroom is the whole fleet.
    }
    if (static_cast<int>(pool->size()) < spec.replicas - spec.failures) {
      out.push_back(vip);
    }
  }
  return out;
}

AssignmentEngine::FleetRound AssignmentEngine::PlanRepair(
    const ControlState& state, const std::vector<YodaInstance*>& active) const {
  FleetRound fleet;
  const std::vector<net::IpAddr> repair_vips = UnderHeadroom(state);
  if (repair_vips.empty() || active.empty()) {
    fleet.round.note = "nothing to repair";
    return fleet;
  }
  for (const YodaInstance* i : active) {
    fleet.instance_order.push_back(i->ip());
  }
  // Problem over every remembered VIP so transient-load numbers are honest;
  // only the under-headroom VIPs gain members.
  assign::Problem problem;
  problem.traffic_capacity = last_capacity_;
  problem.rule_capacity = last_rule_capacity_;
  problem.max_instances = static_cast<int>(active.size());
  for (const auto& [vip, spec] : specs_) {
    if (!state.HasVip(vip)) {
      continue;
    }
    problem.vips.push_back(spec);
    fleet.vip_order.push_back(vip);
  }
  const assign::Assignment old_assignment =
      IndexAssignment(state, fleet.vip_order, fleet.instance_order, true);

  // Least-loaded-first packing of replacements: an instance's load is the
  // post-failure share of every VIP it currently hosts.
  std::vector<double> load(fleet.instance_order.size(), 0.0);
  for (std::size_t v = 0; v < fleet.vip_order.size(); ++v) {
    for (int y : old_assignment.vip_instances[v]) {
      load[static_cast<std::size_t>(y)] += problem.vips[v].ShareAfterFailures();
    }
  }
  assign::Assignment new_assignment = old_assignment;
  const std::set<net::IpAddr> repair_set(repair_vips.begin(), repair_vips.end());
  bool repaired_any = false;
  for (std::size_t v = 0; v < fleet.vip_order.size(); ++v) {
    if (!repair_set.contains(fleet.vip_order[v])) {
      continue;
    }
    const assign::VipSpec& spec = problem.vips[v];
    std::vector<int>& row = new_assignment.vip_instances[v];
    while (static_cast<int>(row.size()) < spec.replicas) {
      int best = -1;
      for (std::size_t y = 0; y < fleet.instance_order.size(); ++y) {
        const int yi = static_cast<int>(y);
        if (std::find(row.begin(), row.end(), yi) != row.end()) {
          continue;
        }
        if (best < 0 || load[y] < load[static_cast<std::size_t>(best)]) {
          best = yi;
        }
      }
      if (best < 0) {
        break;  // Fleet too small to restore full replication.
      }
      row.push_back(best);
      load[static_cast<std::size_t>(best)] += spec.ShareAfterFailures();
      repaired_any = true;
    }
    std::sort(row.begin(), row.end());
  }
  if (!repaired_any) {
    fleet.round.note = "no instance available for repair";
    return fleet;
  }
  fleet.round.feasible = true;
  fleet.round.plan = assign::PlanUpdate(problem, old_assignment, new_assignment);
  fleet.round.steps = assign::ExecutionOrder(fleet.round.plan);
  fleet.round.result.assignment = new_assignment;
  fleet.round.result.feasible = true;
  for (const net::IpAddr vip : repair_vips) {
    const auto v = static_cast<std::size_t>(
        std::find(fleet.vip_order.begin(), fleet.vip_order.end(), vip) -
        fleet.vip_order.begin());
    std::vector<net::IpAddr>& pool = fleet.pools[vip];
    for (int y : new_assignment.vip_instances[v]) {
      pool.push_back(fleet.instance_order[static_cast<std::size_t>(y)]);
    }
  }
  return fleet;
}

}  // namespace yoda
