// AssignmentEngine: wraps the assignment solvers and the update planner so
// every assignment round is an explicit, inspectable artifact — the solved
// Assignment plus the §4.5 UpdatePlan against the previous round plus its
// make-before-break execution order — instead of a side effect buried in the
// controller (Fig 16's numbers now come from these executed plans).
//
// Two layers:
//   PlanRound      — pure index-space rounds over an assign::Problem; keeps
//                    the previous assignment internally, aligned BY VIP ID so
//                    VIPs appearing/disappearing between rounds are handled
//                    (bench_fig16 drives this directly).
//   PlanFleetRound — fleet-space rounds: builds the Problem from the desired
//                    ControlState + live instance list, seeds the previous
//                    assignment from the CURRENT desired pools (so the plan's
//                    deltas reconcile what is actually programmed), and maps
//                    the solution back to instance ips.
//
// The engine also remembers each VIP's last-round spec (n_v, f_v) so the
// failure path can ask which VIPs dropped below their failure headroom and
// get an adds-only repair round (PlanRepair).

#ifndef SRC_CORE_ASSIGNMENT_ENGINE_H_
#define SRC_CORE_ASSIGNMENT_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "src/assign/greedy_solver.h"
#include "src/assign/update_planner.h"
#include "src/core/control_state.h"
#include "src/core/yoda_instance.h"

namespace yoda {

// Per-VIP demand the assignment engine packs. Traffic is in units of one
// instance's capacity.
struct VipDemand {
  double traffic = 0.1;
  int replicas = 1;
  int failures = 0;
};

struct AssignmentRoundConfig {
  double traffic_capacity = 1.0;  // T_y in new-connections/sec.
  int rule_capacity = 2'000;      // R_y.
  double migration_limit = 0.10;  // delta.
};

// Derivation knobs for counter-driven demand (§8 periodic rounds).
struct DemandDerivationConfig {
  double traffic_capacity = 1.0;
  double replication_factor = 4.0;  // n_v = ceil(rf * t_v / T_y).
  double oversubscription = 0.25;   // f_v = floor(n_v * o_v).
};

class AssignmentEngine {
 public:
  struct Round {
    bool feasible = false;
    std::string note;
    assign::SolveResult result;
    assign::UpdatePlan plan;               // Deltas vs the previous round.
    std::vector<assign::PlanStep> steps;   // Make-before-break order.
  };

  struct FleetRound {
    Round round;
    std::vector<net::IpAddr> vip_order;       // Row order of the problem.
    std::vector<net::IpAddr> instance_order;  // Column (index) -> instance ip.
    std::map<net::IpAddr, std::vector<net::IpAddr>> pools;  // New desired pools.
  };

  // --- pure index-space rounds (bench / tests) ---
  // Solves `problem` with the update constraints against the remembered
  // previous round (aligned by VIP id). On success the new assignment
  // becomes the remembered round.
  Round PlanRound(const assign::Problem& problem, bool limit_transient = true,
                  bool limit_migration = true);
  void Reset() { prev_ids_.clear(); prev_ = {}; have_prev_ = false; }

  // --- fleet-space rounds (controller) ---
  FleetRound PlanFleetRound(const ControlState& state,
                            const std::vector<YodaInstance*>& active,
                            const std::map<net::IpAddr, VipDemand>& demand,
                            const AssignmentRoundConfig& cfg);

  // Counter-driven demand (paper §8): per-VIP new-connection rates drained
  // from the instances since the last round.
  static std::map<net::IpAddr, VipDemand> DemandFromCounters(
      const ControlState& state, const std::vector<YodaInstance*>& active,
      double interval_seconds, const DemandDerivationConfig& cfg);

  // VIPs whose desired pool is below n_v - f_v of their last-round spec
  // (they can no longer absorb the failures they were provisioned for).
  std::vector<net::IpAddr> UnderHeadroom(const ControlState& state) const;

  // Adds-only repair round for the under-headroom VIPs: tops each back up to
  // its n_v replicas with the least-loaded active instances. Returns a
  // FleetRound whose plan has no removes (feasible=false when nothing to do
  // or no instance can be added).
  FleetRound PlanRepair(const ControlState& state,
                        const std::vector<YodaInstance*>& active) const;

 private:
  // Aligns the remembered previous assignment to the id order of `problem`.
  assign::Assignment AlignedPrevious(const assign::Problem& problem) const;

  assign::GreedySolver solver_;
  // Index-space memory (PlanRound).
  assign::Assignment prev_;
  std::vector<int> prev_ids_;
  bool have_prev_ = false;
  // Fleet memory: last-round spec per VIP (for headroom / repair) and the
  // capacities the round was solved against.
  std::map<net::IpAddr, assign::VipSpec> specs_;
  double last_capacity_ = 1.0;
  int last_rule_capacity_ = 2'000;
};

}  // namespace yoda

#endif  // SRC_CORE_ASSIGNMENT_ENGINE_H_
