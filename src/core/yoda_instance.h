// YodaInstance: wiring + packet demux on top of the staged L7 pipeline
// (paper §4, §6).
//
// The data plane itself lives in the stage engines (src/core/pipeline.h):
// HandshakeEngine (SYN capture, deterministic SYN-ACK, TLS flight, server
// handshake + the two ACK-point storage writes), L7Dispatcher (header
// assembly, rule scan, sticky binding, selection, HTTP/1.1 re-switch),
// SpliceEngine (sequence-translation tunneling, mirror legs) and
// TakeoverEngine (TCPStore lookups + mid-stream adoption). Flow state lives
// in the sharded FlowTable; storage traffic goes through StoreSession, which
// owns the "write exactly at the ACK points" contract.
//
// What remains here: the controller API (VIP install/remove, health, fail/
// recover), per-VIP traffic metering, the idle-flow GC loop, and HandlePacket
// demux that classifies each packet (client side / server side / unknown)
// and hands it to the right stage.

#ifndef SRC_CORE_YODA_INSTANCE_H_
#define SRC_CORE_YODA_INSTANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cpu_model.h"
#include "src/core/flow_table.h"
#include "src/core/handshake_engine.h"
#include "src/core/instance_config.h"
#include "src/core/l7_dispatcher.h"
#include "src/core/pipeline.h"
#include "src/core/splice_engine.h"
#include "src/core/store_session.h"
#include "src/core/takeover_engine.h"
#include "src/core/tcp_store.h"
#include "src/l4lb/fabric.h"
#include "src/net/network.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/rules/rule_table.h"
#include "src/sim/placement.h"
#include "src/sim/random.h"

namespace yoda {

struct YodaInstanceStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t takeovers_client_side = 0;
  std::uint64_t takeovers_server_side = 0;
  std::uint64_t takeovers_cookie = 0;  // Adoptions served by the signed cookie.
  std::uint64_t cookie_rejects = 0;    // Forged or stale-epoch tokens bounced.
  std::uint64_t takeover_misses = 0;   // Final misses (after retries).
  std::uint64_t takeover_retries = 0;  // Re-issued takeover lookups.
  std::uint64_t packets_tunneled = 0;
  std::uint64_t reswitches = 0;
  std::uint64_t rules_scanned_total = 0;
  std::uint64_t selections = 0;
  std::uint64_t no_backend_resets = 0;
  std::uint64_t dropped_unknown_vip = 0;
  std::uint64_t bad_transition_resets = 0;  // Illegal FSM edges (reset path).
  std::uint64_t fenced_writes = 0;  // Control writes rejected: stale lease token.
};

// Per-VIP traffic accounting the controller polls (paper §6: "each YODA
// instance keeps track of the traffic for individual VIPs").
struct VipTraffic {
  std::uint64_t new_connections = 0;
  std::uint64_t bytes = 0;
};

class YodaInstance : public net::Node {
 public:
  YodaInstance(sim::Simulator* simulator, net::Network* network, l4lb::L4Fabric* fabric,
               TcpStore* store, std::uint64_t seed, YodaInstanceConfig config);
  ~YodaInstance() override;

  net::IpAddr ip() const { return cfg_.ip; }

  // --- controller API ---
  // Every mutating call may carry the leader lease's fencing token (0 =
  // unfenced escape hatch). The instance keeps the highest token it has ever
  // seen and rejects calls carrying an older one (returns false, records
  // kFencedWrite with where=this ip, detail=(offered token << 32) |
  // watermark) — a deposed leader's straggling plan steps cannot mutate
  // VIP state here any more than they can at the muxes.
  //
  // Installs (or replaces) this VIP's rules on this instance. Existing
  // connections keep their previously selected backend (§5.2).
  bool InstallVip(net::IpAddr vip, net::Port vip_port, std::vector<rules::Rule> vip_rules,
                  std::uint64_t token = 0);
  // Enables SSL termination for the VIP (§5.2): the instance answers the
  // handshake with `certificate`, decrypts requests to select the backend,
  // and hands the session to the backend via a ticket sealed under
  // `service_key`. The handshake is deterministic, so a takeover instance
  // resends the identical certificate flight.
  void InstallVipTls(net::IpAddr vip, std::string certificate, std::uint64_t service_key);
  // Withdraws the VIP and drains it: every in-flight flow is explicitly
  // reset toward the client (kFlowReset/kVipRemoved), sticky bindings die
  // with the VIP state, and the traffic window + counter cache are dropped.
  bool RemoveVip(net::IpAddr vip, std::uint64_t token = 0);
  bool ServesVip(net::IpAddr vip) const { return vips_.contains(vip); }
  int RuleCount(net::IpAddr vip) const;
  // Backend health as observed by the controller's monitor.
  bool SetBackendHealth(net::IpAddr backend, bool healthy, std::uint64_t token = 0);
  // Switches the VIP's per-flow store contract: the paper's synchronous
  // ACK-point writes (kStateful) or the cookie-derived fast path with a
  // write-behind takeover journal (kStateless). `epoch` becomes the VIP's
  // cookie epoch — tokens minted under earlier installs are rejected as
  // stale and fall back to the journal. Existing flows keep the mode they
  // latched at creation (make-before-break); false when this instance does
  // not serve the VIP.
  bool SetStoreMode(net::IpAddr vip, StoreMode mode, std::uint64_t epoch,
                    std::uint64_t token = 0);
  StoreMode VipStoreMode(net::IpAddr vip) const {
    auto it = vips_.find(vip);
    return it == vips_.end() ? StoreMode::kStateful : it->second.store_mode;
  }
  // Highest fencing token ever seen (0 = only unfenced writes).
  std::uint64_t ControlToken() const { return control_token_; }

  // Crash: all local flow state vanishes. (The caller also marks the node
  // down in the Network so in-flight packets blackhole.)
  void Fail();
  void Recover();
  bool failed() const { return failed_; }

  // net::Node.
  void HandlePacket(const net::Packet& packet) override;
  // Cold restart (Network::RestartNode): the rebooted VM comes back with no
  // flow state — exactly a Fail() followed by Recover().
  void OnColdRestart() override;

  // Placed testbeds bind this to the instance's owning shard; the mutation
  // entry points (controller API, fail/recover, packet delivery) then assert
  // in debug builds that they execute on that shard.
  sim::ShardOwnershipAudit& audit() { return audit_; }

  CpuModel& cpu() { return cpu_; }
  // Snapshot assembled from the registry counters (labelled with this
  // instance's ip), so the legacy struct view and the exported metrics can
  // never disagree.
  YodaInstanceStats stats() const;
  std::size_t active_flows() const { return flow_table_.size(); }

  // The registry this instance reports into (the shared one from the config,
  // or the private fallback).
  obs::Registry& registry() { return *registry_; }

  // Backend-connection duration (server selection -> request forwarded to
  // the backend), Fig 9's "Connection" component. Lives in the registry as
  // "yoda.connection_phase_ms".
  sim::Histogram& connection_phase_ms() { return *stage_.connection_phase_ms; }

  // The flow-state store (sharded) and the storage write layer, exposed for
  // tests and tooling.
  const FlowTable& flow_table() const { return flow_table_; }
  const StoreSession& store_session() const { return store_session_; }
  // Mutable view for tests that force a journal flush boundary.
  StoreSession& mutable_store_session() { return store_session_; }

  // Reads and clears the per-VIP traffic window.
  std::map<net::IpAddr, VipTraffic> DrainTrafficCounters();

 private:
  struct VipCounters {
    obs::Counter* new_connections = nullptr;
    obs::Counter* bytes = nullptr;
  };

  sim::ShardOwnershipAudit audit_;

  VipState* FindVip(net::IpAddr vip);

  // Fencing-token watermark check; counts + traces rejections. Mirrors
  // Mux::StaleToken (token 0 bypasses; older-than-watermark rejects).
  bool StaleControlToken(std::uint64_t token);

  // Packet demux: classify and hand off to the stage engines.
  void HandleClientSide(const net::Packet& p, VipState& vip);
  void HandleServerSide(const net::Packet& p, VipState& vip);

  void IdleScan();
  // Schedules the next idle scan; each firing re-arms itself. The closure
  // captures only `this` so it cannot form an ownership cycle.
  void ArmIdleScan();

  void MeterVip(net::IpAddr vip, const net::Packet& p);
  VipCounters& VipCountersFor(net::IpAddr vip);

  sim::Simulator* sim_;
  net::Network* net_;
  l4lb::L4Fabric* fabric_;
  sim::Rng rng_;
  YodaInstanceConfig cfg_;
  CpuModel cpu_;
  bool failed_ = false;
  std::uint64_t control_token_ = 0;  // Highest lease fencing token seen.

  std::unordered_map<net::IpAddr, VipState> vips_;
  FlowTable flow_table_;
  std::unordered_map<net::IpAddr, bool> backend_health_;
  std::unordered_map<net::IpAddr, VipTraffic> traffic_;
  std::unordered_map<net::IpAddr, int> backend_load_;  // Active flows per backend.

  obs::Counter* fenced_writes_ctr_ = nullptr;
  // Gauges whose providers capture `this`; frozen to plain values in the
  // dtor so a registry that outlives the instance never calls a dangling
  // closure.
  std::vector<obs::Gauge*> provider_gauges_;
  std::unique_ptr<obs::Registry> owned_registry_;  // Fallback when cfg has none.
  obs::Registry* registry_ = nullptr;              // Never null after ctor.
  obs::FlightRecorder* recorder_ = nullptr;        // Null disables tracing.
  PipelineCounters ctr_;
  PipelineStageMetrics stage_;
  std::unordered_map<net::IpAddr, VipCounters> vip_counters_;

  StoreSession store_session_;

  // The pipeline: shared context + the four stage engines (declared after
  // pipe_ so their ctors may take its address; its fields are wired in the
  // instance ctor body before any packet can arrive).
  PipelineContext pipe_;
  HandshakeEngine handshake_;
  L7Dispatcher dispatcher_;
  SpliceEngine splice_;
  TakeoverEngine takeover_;
};

}  // namespace yoda

#endif  // SRC_CORE_YODA_INSTANCE_H_
