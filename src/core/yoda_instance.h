// YodaInstance: the L7 LB packet driver (paper §4, §6).
//
// An instance is a raw-packet state machine, not a TCP proxy:
//
//   Connection phase (Fig 3):
//     - client SYN: write flow state to TCPStore (storage-a), then answer
//       SYN-ACK with the *deterministic* ISN hash(client ip:port) — any
//       instance answers identically, so nothing else needs storing;
//     - buffer the client's HTTP header bytes (never ACKing them: they fit
//       the initial window, and an un-ACKed header is exactly what a
//       takeover instance will get retransmitted);
//     - match rules, pick the backend, open a VIP-sourced connection to it
//       reusing the client's ISN, and register the SNAT return pin;
//     - on the server SYN-ACK: write full state (storage-b) *before* ACKing,
//       then forward the header.
//
//   Tunneling phase (Fig 4): pure L3 header surgery. The client->server
//   direction needs no sequence translation (same ISN); the server->client
//   direction shifts by (lb_isn - server_isn). Addresses are rewritten so
//   both ends only ever see the VIP.
//
//   Takeover (Fig 5): a packet for an unknown flow triggers a TCPStore
//   lookup (by client key, or by server key for return traffic); the flow is
//   adopted mid-stream and the SNAT pin is re-registered to this instance.

#ifndef SRC_CORE_YODA_INSTANCE_H_
#define SRC_CORE_YODA_INSTANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/cpu_model.h"
#include "src/core/flow_state.h"
#include "src/core/tcp_store.h"
#include "src/http/parser.h"
#include "src/l4lb/fabric.h"
#include "src/net/network.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/rules/rule_table.h"
#include "src/sim/random.h"
#include "src/tls/tls.h"

namespace yoda {

struct YodaInstanceConfig {
  net::IpAddr ip = 0;
  CpuCosts cpu_costs = YodaUserSpaceCosts();
  double cores = 1.0;
  // Base latency of the rule scan (Fig 6 intercept); per-rule cost is in
  // CpuCosts::per_rule_scanned via the latency model below.
  sim::Duration rule_scan_base_delay = sim::Usec(300);
  sim::Duration rule_scan_per_rule_delay = sim::Nsec(900);
  // How long after both FINs a flow's state lingers before deletion.
  sim::Duration flow_cleanup_delay = sim::Sec(1);
  // Flows with no packets for this long are garbage-collected (handles
  // half-closed flows orphaned by takeovers that split the two directions
  // across instances). 0 disables.
  sim::Duration flow_idle_timeout = sim::Minutes(5);
  sim::Duration idle_scan_interval = sim::Sec(30);
  // Resend the server-side SYN if no SYN-ACK within this long.
  sim::Duration server_syn_timeout = sim::Sec(3);
  int server_syn_retries = 2;
  // A TCPStore miss during takeover is treated as recoverable (the replica
  // may be lagging or mid-restart): the lookup is re-issued up to this many
  // times with doubling backoff. Only after the final miss is the flow
  // explicitly reset toward the client (kFlowReset/kTakeoverMiss) instead of
  // silently dropped. 0 restores the drop-on-first-miss behavior.
  int takeover_retry_limit = 2;
  sim::Duration takeover_retry_backoff = sim::Msec(5);
  std::uint32_t mss = 1400;
  // Inspect client bytes on HTTP/1.1 connections and re-switch backends
  // between requests (§5.2).
  bool http11_reswitch = true;
  // Observability sinks, normally the testbed-owned registry/recorder. A
  // null registry makes the instance keep a private one (counters still
  // work); a null recorder disables flow tracing.
  obs::Registry* registry = nullptr;
  obs::FlightRecorder* recorder = nullptr;
};

struct YodaInstanceStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t takeovers_client_side = 0;
  std::uint64_t takeovers_server_side = 0;
  std::uint64_t takeover_misses = 0;   // Final misses (after retries).
  std::uint64_t takeover_retries = 0;  // Re-issued takeover lookups.
  std::uint64_t packets_tunneled = 0;
  std::uint64_t reswitches = 0;
  std::uint64_t rules_scanned_total = 0;
  std::uint64_t selections = 0;
  std::uint64_t no_backend_resets = 0;
  std::uint64_t dropped_unknown_vip = 0;
};

// Per-VIP traffic accounting the controller polls (paper §6: "each YODA
// instance keeps track of the traffic for individual VIPs").
struct VipTraffic {
  std::uint64_t new_connections = 0;
  std::uint64_t bytes = 0;
};

class YodaInstance : public net::Node {
 public:
  YodaInstance(sim::Simulator* simulator, net::Network* network, l4lb::L4Fabric* fabric,
               TcpStore* store, std::uint64_t seed, YodaInstanceConfig config);
  ~YodaInstance() override;

  net::IpAddr ip() const { return cfg_.ip; }

  // --- controller API ---
  // Installs (or replaces) this VIP's rules on this instance. Existing
  // connections keep their previously selected backend (§5.2).
  void InstallVip(net::IpAddr vip, net::Port vip_port, std::vector<rules::Rule> vip_rules);
  // Enables SSL termination for the VIP (§5.2): the instance answers the
  // handshake with `certificate`, decrypts requests to select the backend,
  // and hands the session to the backend via a ticket sealed under
  // `service_key`. The handshake is deterministic, so a takeover instance
  // resends the identical certificate flight.
  void InstallVipTls(net::IpAddr vip, std::string certificate, std::uint64_t service_key);
  void RemoveVip(net::IpAddr vip);
  bool ServesVip(net::IpAddr vip) const { return vips_.contains(vip); }
  int RuleCount(net::IpAddr vip) const;
  // Backend health as observed by the controller's monitor.
  void SetBackendHealth(net::IpAddr backend, bool healthy);

  // Crash: all local flow state vanishes. (The caller also marks the node
  // down in the Network so in-flight packets blackhole.)
  void Fail();
  void Recover();
  bool failed() const { return failed_; }

  // net::Node.
  void HandlePacket(const net::Packet& packet) override;
  // Cold restart (Network::RestartNode): the rebooted VM comes back with no
  // flow state — exactly a Fail() followed by Recover().
  void OnColdRestart() override;

  CpuModel& cpu() { return cpu_; }
  // Snapshot assembled from the registry counters (labelled with this
  // instance's ip), so the legacy struct view and the exported metrics can
  // never disagree.
  YodaInstanceStats stats() const;
  std::size_t active_flows() const { return flows_.size(); }

  // The registry this instance reports into (the shared one from the config,
  // or the private fallback).
  obs::Registry& registry() { return *registry_; }

  // Backend-connection duration (server selection -> request forwarded to
  // the backend), Fig 9's "Connection" component. Lives in the registry as
  // "yoda.connection_phase_ms".
  sim::Histogram& connection_phase_ms() { return *connection_phase_ms_; }

  // Reads and clears the per-VIP traffic window.
  std::map<net::IpAddr, VipTraffic> DrainTrafficCounters();

 private:
  struct VipTls {
    std::string certificate;
    std::uint64_t service_key = 0;
  };

  struct VipState {
    net::Port vip_port = 80;
    rules::RuleTable table;
    rules::StickyTable sticky;
    std::set<net::IpAddr> backends;  // For classifying server-side packets.
    std::optional<VipTls> tls;       // SSL termination (§5.2).
  };

  // Client-side flow identity.
  struct FlowKey {
    net::IpAddr vip = 0;
    net::Port vip_port = 0;
    net::IpAddr client_ip = 0;
    net::Port client_port = 0;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const {
      return kv::Mix64((static_cast<std::uint64_t>(k.vip) << 32) ^ k.client_ip) ^
             kv::Mix64((static_cast<std::uint64_t>(k.vip_port) << 16) ^ k.client_port);
    }
  };

  struct LocalFlow {
    FlowState st;
    sim::Time started = 0;     // Selection start (Fig 9 instrumentation).
    sim::Time last_packet = 0;  // For idle GC.
    // Connection phase: client byte-stream reassembly (seq -> payload).
    // Payload values share the client's segment buffers (no deep copies).
    std::map<std::uint32_t, net::Payload> pending_segments;
    std::uint32_t assembled_end = 0;  // Next expected client seq.
    std::string assembled;            // In-order client bytes (the header).
    http::RequestParser parser;
    bool storage_a_done = false;
    bool server_syn_sent = false;
    int server_syn_attempts = 0;
    sim::TimerHandle server_syn_timer;
    bool established = false;  // storage-b done; tunneling active.
    // HTTP/1.1 inspection of the client stream for re-switching. Request
    // bytes are buffered from request_start_seq until the request is
    // complete and routed; only then are they forwarded.
    bool inspect_enabled = false;
    http::RequestParser inspect_parser;
    std::uint32_t inspect_next_seq = 0;    // Next client seq to consume.
    std::uint32_t request_start_seq = 0;   // Where the in-progress request began.
    std::string pending_request;           // Its bytes so far.
    int outstanding_requests = 0;
    // Highest client-facing sequence we have emitted toward the client + 1;
    // a re-switched backend's stream is spliced in at this position.
    std::uint32_t client_facing_nxt = 0;
    // Request mirroring (§5.2, "sending the same request to multiple
    // servers"): shadow legs racing the primary; the first responder wins.
    struct MirrorLeg {
      net::IpAddr ip = 0;
      net::Port port = 80;
      bool established = false;
      std::uint32_t server_isn = 0;
    };
    std::vector<MirrorLeg> mirror_legs;
    bool mirror_decided = false;  // A winner has produced response data.

    // SSL termination state (connection phase only; tunneling is oblivious).
    bool tls_active = false;
    tls::RecordReader tls_reader;
    std::size_t tls_consumed = 0;          // assembled bytes already fed.
    bool tls_ready = false;                // Session key derived.
    std::uint64_t tls_client_random = 0;
    std::uint64_t tls_session_key = 0;
    std::uint32_t tls_handshake_len = 0;   // Hello+Finished bytes (client side).
    std::uint64_t tls_cipher_offset = 0;   // Decryption offset into appdata.
    std::string tls_plaintext;             // Decrypted request bytes.
    std::uint32_t cert_flight_len = 0;
    // Teardown tracking.
    bool fin_from_client = false;
    bool fin_from_server = false;
    bool cleanup_scheduled = false;
    // Packets that arrived during an in-flight storage op.
    std::vector<net::Packet> stalled;
    bool lookup_pending = false;
  };

  VipState* FindVip(net::IpAddr vip);
  LocalFlow* FindFlow(const FlowKey& key);

  void HandleClientSide(const net::Packet& p, VipState& vip);
  void HandleServerSide(const net::Packet& p, VipState& vip);

  void StartNewFlow(const net::Packet& syn, VipState& vip);
  void SendSynAck(const FlowKey& key, const LocalFlow& flow);
  void ClientConnectionPhase(const FlowKey& key, LocalFlow& flow, VipState& vip,
                             const net::Packet& p);
  void TlsConnectionPhase(const FlowKey& key, LocalFlow& flow, VipState& vip);
  void SendCertificateFlight(const FlowKey& key, LocalFlow& flow, const VipState& vip);
  void TrySelectAndConnect(const FlowKey& key, LocalFlow& flow, VipState& vip);
  void SendServerSyn(const FlowKey& key, LocalFlow& flow);
  void OnServerSynAck(const FlowKey& key, LocalFlow& flow, const net::Packet& p);
  void ForwardRequestToServer(const FlowKey& key, LocalFlow& flow);

  void TunnelFromClient(const FlowKey& key, LocalFlow& flow, VipState& vip,
                        const net::Packet& p);
  void TunnelFromServer(const FlowKey& key, LocalFlow& flow, const net::Packet& p);
  void InspectClientStream(const FlowKey& key, LocalFlow& flow, VipState& vip,
                           const net::Packet& p);
  void ReSwitch(const FlowKey& key, LocalFlow& flow, VipState& vip,
                const rules::Backend& new_backend);

  void TakeoverClientSide(const FlowKey& key, const net::Packet& p);
  void TakeoverServerSide(const net::Packet& p, VipState& vip);
  void AdoptFlow(const FlowKey& key, const FlowState& st);
  // Bounded re-fetch plumbing for TCPStore misses during takeover.
  void ClientTakeoverLookup(const FlowKey& key, int attempt);
  void ServerTakeoverLookup(const net::Packet& p, int attempt);
  // Explicit reset toward the client; removes the local flow entry.
  void ResetFlowToClient(const FlowKey& key, obs::FlowResetReason reason);

  void LaunchMirrorLegs(const FlowKey& key, LocalFlow& flow);
  // Returns true if the packet was consumed as mirror-leg traffic.
  bool HandleMirrorPacket(const FlowKey& key, LocalFlow& flow, const net::Packet& p);
  void PromoteMirrorWinner(const FlowKey& key, LocalFlow& flow, LocalFlow::MirrorLeg& leg,
                           const net::Packet& first_data);
  void KillLosingLegs(const FlowKey& key, LocalFlow& flow, net::IpAddr winner_ip);

  void MaybeScheduleCleanup(const FlowKey& key, LocalFlow& flow);
  void CleanupFlow(const FlowKey& key, bool remove_from_store);
  void IdleScan();
  // Schedules the next idle scan; each firing re-arms itself. The closure
  // captures only `this` so it cannot form an ownership cycle.
  void ArmIdleScan();

  std::optional<rules::Selection> SelectBackend(VipState& vip, const http::Request& req);
  void BindStickyIfNeeded(VipState& vip, const http::Request& req, const rules::Backend& b);
  sim::Duration RuleScanDelay(int rules_scanned) const;

  void EmitForwarded(net::Packet p);  // Adds forward delay + CPU charge.
  void Emit(net::Packet p);           // Raw send (control packets).
  void MeterVip(net::IpAddr vip, const net::Packet& p);

  // Appends a flight-recorder event for `key` (no-op without a recorder).
  void Trace(const FlowKey& key, obs::EventType type, std::uint64_t detail = 0);

  sim::Simulator* sim_;
  net::Network* net_;
  l4lb::L4Fabric* fabric_;
  TcpStore* store_;
  sim::Rng rng_;
  YodaInstanceConfig cfg_;
  CpuModel cpu_;
  bool failed_ = false;

  std::unordered_map<net::IpAddr, VipState> vips_;
  std::unordered_map<FlowKey, std::unique_ptr<LocalFlow>, FlowKeyHash> flows_;
  // Server-side tuple -> client-side flow key (local fast path; the TCPStore
  // server key serves the same role across instances).
  std::unordered_map<net::FiveTuple, FlowKey, net::FiveTupleHash> server_index_;
  std::unordered_map<net::IpAddr, bool> backend_health_;
  std::unordered_map<net::IpAddr, VipTraffic> traffic_;
  std::unordered_map<net::IpAddr, int> backend_load_;  // Active flows per backend.

  // Registry-backed counters (resolved once at construction; hot paths bump
  // pointers, never build label strings).
  struct StatCounters {
    obs::Counter* flows_started = nullptr;
    obs::Counter* flows_completed = nullptr;
    obs::Counter* takeovers_client_side = nullptr;
    obs::Counter* takeovers_server_side = nullptr;
    obs::Counter* takeover_misses = nullptr;
    obs::Counter* takeover_retries = nullptr;
    obs::Counter* packets_tunneled = nullptr;
    obs::Counter* reswitches = nullptr;
    obs::Counter* rules_scanned_total = nullptr;
    obs::Counter* selections = nullptr;
    obs::Counter* no_backend_resets = nullptr;
    obs::Counter* dropped_unknown_vip = nullptr;
  };
  struct VipCounters {
    obs::Counter* new_connections = nullptr;
    obs::Counter* bytes = nullptr;
  };
  VipCounters& VipCountersFor(net::IpAddr vip);

  std::unique_ptr<obs::Registry> owned_registry_;  // Fallback when cfg has none.
  obs::Registry* registry_ = nullptr;              // Never null after ctor.
  obs::FlightRecorder* recorder_ = nullptr;        // Null disables tracing.
  StatCounters ctr_;
  std::unordered_map<net::IpAddr, VipCounters> vip_counters_;
  sim::Histogram* connection_phase_ms_ = nullptr;  // Registry-owned.
};

}  // namespace yoda

#endif  // SRC_CORE_YODA_INSTANCE_H_
