// Yoda controller (paper §6): user interface, assignment engine hooks,
// assignment updater and monitor.
//
//   - Monitor: pings Yoda instances, TCPStore servers and backend servers
//     every 600 ms; a failed Yoda instance is removed from all L4 mappings
//     (so the fabric re-ECMPs its traffic to survivors), and failed backends
//     are marked unhealthy on every instance.
//   - VIP lifecycle: DefineVip installs the compiled rules on the serving
//     instances and programs the VIP pool into the L4 fabric; removal runs
//     in reverse (§5.2).
//   - Policy update: rules are swapped on the instances; existing
//     connections keep their selected backend by construction (the
//     connection -> backend pin lives in the flow state, not the table).
//   - Elastic scaling (§7.3): when mean instance CPU exceeds the scale-out
//     threshold, spare instances are activated, given every VIP's rules, and
//     added to the pools via a staggered (non-atomic) mux update.

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/assign/greedy_solver.h"
#include "src/core/yoda_instance.h"
#include "src/kv/kv_server.h"
#include "src/l4lb/fabric.h"
#include "src/rules/rule.h"

namespace yoda {

struct ControllerConfig {
  sim::Duration monitor_interval = sim::Msec(600);
  sim::Duration mux_stagger = sim::Msec(50);
  // Health-check hysteresis. An instance is declared dead only after this
  // many CONSECUTIVE missed probes (1 = paper behavior: first miss kills).
  // Probes ride Network::ProbePath, so a gray SYN-filter does not blind the
  // monitor, but a lossy link or partition does cost it probes.
  int fail_after_misses = 1;
  // Readmission: when enabled, a removed instance is parked as "suspended"
  // and re-pooled after this many consecutive healthy probes. Disabled keeps
  // the paper's remove-forever semantics.
  bool readmit_instances = false;
  int readmit_after_successes = 2;
  // Flap suppression: every failure after a readmission doubles the healthy
  // streak required next time, capped at this many probes.
  int readmit_penalty_cap = 8;
  bool auto_scale = false;
  double scale_out_cpu = 0.75;  // Mean utilization that triggers scale-out.
  int scale_out_step = 3;       // Instances added per trigger.
  // Consecutive over-threshold monitor ticks required before scaling
  // (hysteresis against transient spikes).
  int scale_out_ticks = 1;
  sim::Duration cpu_window = sim::Sec(1);
  // Observability sinks: control-plane happenings (instance/backend health
  // flips, rule swaps, pool reprogramming, spare activation) land in the
  // recorder's system-event log; counters mirror into "controller.*".
  obs::Registry* registry = nullptr;
  obs::FlightRecorder* recorder = nullptr;
};

struct ControllerEvent {
  sim::Time when = 0;
  std::string what;
};

class Controller {
 public:
  Controller(sim::Simulator* simulator, net::Network* network, l4lb::L4Fabric* fabric,
             ControllerConfig config = {});

  // --- fleet management ---
  void AddInstance(YodaInstance* instance);        // Active from the start.
  void AddSpareInstance(YodaInstance* instance);   // Activated by scaling.
  void AddKvServer(kv::KvServer* server);
  void AddBackend(net::IpAddr backend);

  // --- VIP lifecycle (§5.2) ---
  void DefineVip(net::IpAddr vip, net::Port vip_port, std::vector<rules::Rule> vip_rules);
  void RemoveVip(net::IpAddr vip);
  void UpdateVipRules(net::IpAddr vip, std::vector<rules::Rule> vip_rules);

  // --- many-to-many VIP assignment (§4.4) ---
  // Per-VIP demand the assignment engine packs. Traffic is in units of one
  // instance's capacity.
  struct VipDemand {
    double traffic = 0.1;
    int replicas = 1;
    int failures = 0;
  };
  // Recomputes the VIP->instance assignment with the greedy solver (Fig 7
  // model; Eq 4-7 honoured against the previous round), installs each VIP's
  // rules only on its assigned instances, and programs the L4 pools with a
  // staggered (non-atomic) update. Returns false if infeasible.
  bool ApplyManyToMany(const std::map<net::IpAddr, VipDemand>& demand,
                       double traffic_capacity, int rule_capacity,
                       double migration_limit = 0.10);
  // The instances currently assigned to `vip` (empty if all-to-all mode).
  std::vector<net::IpAddr> AssignedInstances(net::IpAddr vip) const;

  // Periodic re-assignment (§8: "We calculate the assignment between the VIP
  // and the YODA-instances every 10 mins"): demand is derived from the
  // instances' per-VIP traffic counters collected since the last round.
  struct PeriodicAssignmentConfig {
    sim::Duration interval = sim::Minutes(10);
    double traffic_capacity = 1.0;       // T_y in new-connections/sec.
    int rule_capacity = 2'000;           // R_y.
    double migration_limit = 0.10;       // delta.
    double replication_factor = 4.0;     // n_v = ceil(rf * t_v / T_y).
    double oversubscription = 0.25;      // f_v = floor(n_v * o_v).
  };
  void EnablePeriodicAssignment(PeriodicAssignmentConfig config);
  // Runs one counter-driven assignment round immediately (with the periodic
  // config, or defaults if periodic assignment was never enabled).
  void RunAssignmentRoundNow();
  int assignment_rounds() const { return assignment_rounds_; }

  // Starts the periodic monitor.
  void Start();

  // Immediately runs one monitor pass (tests use this for determinism).
  void MonitorTick();

  std::vector<YodaInstance*> ActiveInstances() const { return active_; }
  std::vector<YodaInstance*> SuspendedInstances() const { return suspended_; }
  const std::vector<ControllerEvent>& events() const { return events_; }
  int detected_failures() const { return detected_failures_; }
  int readmissions() const { return readmissions_; }

 private:
  void Log(const std::string& what);
  void SystemEvent(obs::EventType type, std::uint32_t where, std::uint64_t detail = 0);
  void HandleInstanceFailure(YodaInstance* instance);
  // Self-rescheduling daemon loops; each firing re-arms itself. The closures
  // capture only `this`, so they cannot form ownership cycles.
  void ArmMonitor();
  void ArmAssignmentRound();
  void ActivateSpare();
  std::vector<net::IpAddr> ActiveIps() const;
  void ReprogramAllPools(bool staggered);

  sim::Simulator* sim_;
  net::Network* net_;
  l4lb::L4Fabric* fabric_;
  ControllerConfig cfg_;

  // Per-instance probe hysteresis state, keyed by instance ip.
  struct HealthState {
    int miss_streak = 0;
    int success_streak = 0;
    int flaps = 0;  // Failures observed after at least one readmission.
    int required_successes = 0;
  };
  bool ProbeInstance(YodaInstance* instance) const;

  std::vector<YodaInstance*> active_;
  std::vector<YodaInstance*> suspended_;
  std::map<net::IpAddr, HealthState> health_;
  int readmissions_ = 0;
  std::vector<YodaInstance*> spares_;
  std::vector<kv::KvServer*> kv_servers_;
  std::vector<net::IpAddr> backends_;
  std::map<net::IpAddr, bool> backend_up_;

  struct VipEntry {
    net::Port port = 80;
    std::vector<rules::Rule> rules;
  };
  std::map<net::IpAddr, VipEntry> vips_;

  bool started_ = false;
  int over_threshold_ticks_ = 0;
  int detected_failures_ = 0;
  std::vector<ControllerEvent> events_;

  // Registry counters (null without a registry in the config).
  obs::Counter* monitor_ticks_ctr_ = nullptr;
  obs::Counter* detected_failures_ctr_ = nullptr;
  obs::Counter* rule_updates_ctr_ = nullptr;
  obs::Counter* pool_updates_ctr_ = nullptr;
  obs::Counter* spares_activated_ctr_ = nullptr;

  void AssignmentRoundFromCounters();

  std::optional<PeriodicAssignmentConfig> periodic_;
  int assignment_rounds_ = 0;

  // Many-to-many state: vip -> assigned instance ips; empty = all-to-all.
  std::map<net::IpAddr, std::vector<net::IpAddr>> assignment_;
  assign::Assignment last_solution_;
  std::vector<net::IpAddr> last_solution_vips_;  // Row order of last_solution_.
  bool have_solution_ = false;
};

}  // namespace yoda

#endif  // SRC_CORE_CONTROLLER_H_
