// Yoda controller (paper §6), decomposed into a reconciliation control plane.
//
// The Controller is WIRING, not mechanism. It owns the four reconciliation
// components and routes between them; every live reconfiguration becomes an
// epoch-stamped plan executed by the actuator in make-before-break order:
//
//   ControlState     — epoch-stamped desired config (VIPs, rules, assignment)
//                      with a changelog the flight recorder can replay.
//   HealthMonitor    — actual-state observer: probes instances/backends and
//                      returns health TRANSITIONS (hysteresis, readmission,
//                      flap suppression).
//   AssignmentEngine — turns demand into an explicit UpdatePlan + ordered
//                      PlanSteps per round (§4.4 solver + §4.5 planner), and
//                      plans adds-only repair rounds after failures.
//   AutoScaler       — §7.3 mean-CPU scale-out policy (decision only).
//   FleetActuator    — the ONLY code touching instances and the L4 fabric;
//                      executes plans as idempotent epoch-tagged steps.
//
// Public API is unchanged from the monolithic controller; tests and the
// testbed drive it identically.

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/assignment_engine.h"
#include "src/core/auto_scaler.h"
#include "src/core/control_journal.h"
#include "src/core/control_state.h"
#include "src/core/fleet_actuator.h"
#include "src/core/health_monitor.h"
#include "src/core/leader_lease.h"
#include "src/core/yoda_instance.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"
#include "src/l4lb/fabric.h"
#include "src/rules/rule.h"

namespace yoda {

// Controller HA (replicated control plane). When enabled, this replica
// contends for the store-backed leader lease; only the lease holder mutates
// desired state or drives plans, every mutation is journaled durably through
// `store` (snapshot + changelog tail, open plans, applied-step markers), and
// every data-plane write carries the lease's fencing token so the fleet
// rejects a deposed leader's stragglers. Disabled (default) keeps the
// single-controller behavior bit-identical.
struct ControllerHaConfig {
  bool enabled = false;
  net::IpAddr self = 0;                     // This replica's address.
  kv::ReplicatingClient* store = nullptr;   // Journal + lease substrate.
  sim::Duration lease_ttl = sim::Msec(300);
  sim::Duration lease_renew = sim::Msec(100);
  sim::Duration lease_acquire = sim::Msec(50);
  int snapshot_every = 8;                   // Changes per snapshot roll.
};

struct ControllerConfig {
  sim::Duration monitor_interval = sim::Msec(600);
  sim::Duration mux_stagger = sim::Msec(50);
  // Health-check hysteresis. An instance is declared dead only after this
  // many CONSECUTIVE missed probes (1 = paper behavior: first miss kills).
  // Probes ride Network::ProbePath, so a gray SYN-filter does not blind the
  // monitor, but a lossy link or partition does cost it probes.
  int fail_after_misses = 1;
  // Readmission: when enabled, a removed instance is parked as "suspended"
  // and re-pooled after this many consecutive healthy probes. Disabled keeps
  // the paper's remove-forever semantics.
  bool readmit_instances = false;
  int readmit_after_successes = 2;
  // Flap suppression: every failure after a readmission doubles the healthy
  // streak required next time, capped at this many probes.
  int readmit_penalty_cap = 8;
  bool auto_scale = false;
  double scale_out_cpu = 0.75;  // Mean utilization that triggers scale-out.
  int scale_out_step = 3;       // Instances added per trigger.
  // Consecutive over-threshold monitor ticks required before scaling
  // (hysteresis against transient spikes).
  int scale_out_ticks = 1;
  sim::Duration cpu_window = sim::Sec(1);
  // Bounded per-step actuator retry (see FleetActuatorConfig). 0 keeps the
  // seed's apply-once behavior; the HA testbed template enables it.
  int max_step_retries = 0;
  sim::Duration step_retry_backoff = sim::Msec(25);
  // Observability sinks: config changes and reconcile plans/steps land in
  // the recorder's system-event log; counters mirror into "controller.*".
  obs::Registry* registry = nullptr;
  obs::FlightRecorder* recorder = nullptr;
  ControllerHaConfig ha;
  // --- intra-cell sharding (set together by the placed testbed) ---
  // Health probes consult only the network's shard-replicated down flags
  // (never instance->failed(): the instance lives on another shard).
  bool probe_network_only = false;
  // Actuator hooks: route instance-state writes onto the instance's owning
  // shard, and replace the retry probe's failed() read (see
  // FleetActuatorConfig).
  std::function<void(YodaInstance*, std::function<void()>)> run_on_instance;
  std::function<bool(const YodaInstance*)> instance_down;
};

struct ControllerEvent {
  sim::Time when = 0;
  std::string what;
};

class Controller {
 public:
  Controller(sim::Simulator* simulator, net::Network* network, l4lb::L4Fabric* fabric,
             ControllerConfig config = {});

  // --- fleet management ---
  void AddInstance(YodaInstance* instance);        // Active from the start.
  void AddSpareInstance(YodaInstance* instance);   // Activated by scaling.
  void AddKvServer(kv::KvServer* server);
  void AddBackend(net::IpAddr backend);

  // --- VIP lifecycle (§5.2) ---
  void DefineVip(net::IpAddr vip, net::Port vip_port, std::vector<rules::Rule> vip_rules);
  void RemoveVip(net::IpAddr vip);
  void UpdateVipRules(net::IpAddr vip, std::vector<rules::Rule> vip_rules);
  // Flips the VIP's per-flow store contract and rolls it out make-before-
  // break (instances -> barrier -> muxes). Existing flows keep the mode they
  // latched at creation; cookies minted before the flip go stale-epoch and
  // fall back to the journal.
  void SetStoreMode(net::IpAddr vip, StoreMode mode);

  // --- many-to-many VIP assignment (§4.4) ---
  using VipDemand = yoda::VipDemand;
  // Recomputes the VIP->instance assignment with the greedy solver (Fig 7
  // model; Eq 4-7 honoured against the previous round) and rolls the result
  // out as an epoch-stamped make-before-break plan (rules + pool adds, a mux
  // convergence barrier, then removes + rule scrubs). Returns false if
  // infeasible.
  bool ApplyManyToMany(const std::map<net::IpAddr, VipDemand>& demand,
                       double traffic_capacity, int rule_capacity,
                       double migration_limit = 0.10);
  // The instances currently assigned to `vip` (empty if all-to-all mode).
  std::vector<net::IpAddr> AssignedInstances(net::IpAddr vip) const;

  // Periodic re-assignment (§8: "We calculate the assignment between the VIP
  // and the YODA-instances every 10 mins"): demand is derived from the
  // instances' per-VIP traffic counters collected since the last round.
  struct PeriodicAssignmentConfig {
    sim::Duration interval = sim::Minutes(10);
    double traffic_capacity = 1.0;       // T_y in new-connections/sec.
    int rule_capacity = 2'000;           // R_y.
    double migration_limit = 0.10;       // delta.
    double replication_factor = 4.0;     // n_v = ceil(rf * t_v / T_y).
    double oversubscription = 0.25;      // f_v = floor(n_v * o_v).
  };
  void EnablePeriodicAssignment(PeriodicAssignmentConfig config);
  // Runs one counter-driven assignment round immediately (with the periodic
  // config, or defaults if periodic assignment was never enabled).
  void RunAssignmentRoundNow();
  int assignment_rounds() const { return assignment_rounds_; }

  // Starts the periodic monitor (non-HA) or begins contending for the
  // leader lease (HA; the monitor arms on first acquisition).
  void Start();

  // Immediately runs one monitor pass (tests use this for determinism).
  // A no-op on an HA replica that is not the acting leader.
  void MonitorTick();

  // --- controller HA (replica lifecycle + introspection) ---
  // Crash: this replica stops renewing its lease and ignores every parked
  // callback; its in-memory state is untouched (it is dead, nobody reads
  // it). Restart re-enters the lease contest as a standby.
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }
  // True when this replica may mutate state: always in non-HA mode, lease
  // holder otherwise.
  bool ActingLeader() const;
  std::uint64_t fencing_token() const { return lease_ ? lease_->token() : 0; }
  const ControlJournal* journal() const { return journal_.get(); }
  const LeaderLease* lease() const { return lease_.get(); }

  std::vector<YodaInstance*> ActiveInstances() const { return monitor_.active(); }
  std::vector<YodaInstance*> SuspendedInstances() const { return monitor_.suspended(); }
  const std::vector<ControllerEvent>& events() const { return events_; }
  int detected_failures() const { return monitor_.detected_failures(); }
  int readmissions() const { return monitor_.readmissions(); }

  // --- reconciliation components (tests / tools) ---
  const ControlState& state() const { return state_; }
  const FleetActuator& actuator() const { return actuator_; }
  const HealthMonitor& monitor() const { return monitor_; }
  const AssignmentEngine& engine() const { return engine_; }

 private:
  void Log(const std::string& what);
  void SystemEvent(obs::EventType type, std::uint32_t where, std::uint64_t detail = 0);
  // Stamps the lease token + a fresh plan id and journals the plan before
  // executing it (HA leader); plain pass-through otherwise. By value: the
  // HA path rewrites the stamp fields.
  void ExecutePlan(ExecPlan plan);
  // Lease callbacks + crash-resume pipeline.
  void OnLeaderAcquired(std::uint64_t token);
  void OnLeaderLost();
  void AdoptRestored(const RestoredControlPlane& restored, std::uint64_t token);
  void ResumePlan(const RestoredPlan& restored, std::uint64_t token);
  void ApplyTransition(const HealthTransition& transition);
  void HandleInstanceFailure(const HealthTransition& transition);
  void HandleReadmission(const HealthTransition& transition);
  // Adds-only repair rollout for VIPs that a failure pushed below their
  // provisioned failure headroom (n_v - f_v of the last round's spec).
  void RepairHeadroom();
  void RunAutoScale();
  void AssignmentRoundFromCounters();
  std::vector<std::pair<net::IpAddr, bool>> BackendHealthList() const;
  // Self-rescheduling daemon loops; each firing re-arms itself. The closures
  // capture only `this`, so they cannot form ownership cycles.
  void ArmMonitor();
  void ArmAssignmentRound();
  // Builds the actuator config, wiring the HA hooks (token validity check,
  // durable applied/done markers) when HA is enabled. Static: runs in the
  // ctor init list, so it must not touch members; the hooks only fire later.
  static FleetActuatorConfig ActuatorConfigFor(Controller* self,
                                               const ControllerConfig& config);

  sim::Simulator* sim_;
  l4lb::L4Fabric* fabric_;
  ControllerConfig cfg_;

  ControlState state_;
  HealthMonitor monitor_;
  AssignmentEngine engine_;
  AutoScaler scaler_;
  FleetActuator actuator_;

  std::unique_ptr<ControlJournal> journal_;  // HA only.
  std::unique_ptr<LeaderLease> lease_;       // HA only.
  bool crashed_ = false;
  bool monitor_armed_ = false;

  std::vector<YodaInstance*> spares_;
  std::vector<kv::KvServer*> kv_servers_;
  bool started_ = false;
  std::vector<ControllerEvent> events_;
  std::optional<PeriodicAssignmentConfig> periodic_;
  int assignment_rounds_ = 0;

  // Registry counters (null without a registry in the config).
  obs::Counter* monitor_ticks_ctr_ = nullptr;
  obs::Counter* detected_failures_ctr_ = nullptr;
  obs::Counter* spares_activated_ctr_ = nullptr;
};

}  // namespace yoda

#endif  // SRC_CORE_CONTROLLER_H_
