// StoreSession: the one place that owns the paper's "write exactly at the
// ACK points" contract (Fig 3) in front of TcpStore/ReplicatingClient.
//
// Two kinds of writes leave an instance:
//
//   ACK-point writes — storage-a (before the SYN-ACK may be sent) and
//   storage-b (before the server's SYN-ACK may be ACKed). These gate
//   protocol progress: the caller supplies a completion and must not emit
//   the corresponding ACK until it fires. StoreSession times the blocking
//   wait into the per-stage store histogram.
//
//   Write-behind refreshes — non-gating state updates (HTTP/1.1 pipeline
//   order, mirror-winner retarget). Correctness never waits on these, so
//   StoreSession coalesces them: while a refresh for a flow is in flight,
//   newer states replace the queued one instead of issuing overlapping
//   writes; the latest state is written when the in-flight op completes.
//
// Teardown removes drop any queued refresh for the flow first, so a stale
// refresh cannot resurrect a deleted key from this instance.

#ifndef SRC_CORE_STORE_SESSION_H_
#define SRC_CORE_STORE_SESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/core/flow_state.h"
#include "src/core/tcp_store.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace yoda {

struct StoreSessionStats {
  std::uint64_t ack_point_writes = 0;   // storage-a + storage-b.
  std::uint64_t refreshes = 0;          // Write-behind updates requested.
  std::uint64_t refreshes_coalesced = 0;  // Collapsed into an in-flight write.
  std::uint64_t removes = 0;
};

class StoreSession {
 public:
  using Ack = TcpStore::Ack;
  using Lookup = TcpStore::Lookup;

  // `store_wait_ms` (optional) receives the blocking duration of every
  // ACK-point write; `sim` is required only when the histogram is set.
  StoreSession(TcpStore* store, sim::Simulator* sim = nullptr,
               sim::Histogram* store_wait_ms = nullptr);
  StoreSession(const StoreSession&) = delete;
  StoreSession& operator=(const StoreSession&) = delete;

  // Late binding for owners that resolve the histogram after construction.
  void set_store_wait_histogram(sim::Histogram* h) { store_wait_ms_ = h; }

  // storage-a: must complete before the SYN-ACK is emitted.
  void WriteSynState(const FlowState& state, Ack done);
  // storage-b: must complete before the server SYN-ACK is ACKed.
  void WriteEstablishedState(const FlowState& state, Ack done);

  // Write-behind refresh of an already-established flow's state; coalesced.
  void Refresh(const FlowState& state);

  // Teardown (fire-and-forget); cancels any queued refresh for the flow.
  void Remove(const FlowState& state);

  void LookupByClient(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                      net::Port client_port, Lookup done);
  void LookupByServer(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                      net::Port client_port, Lookup done);

  const StoreSessionStats& stats() const { return stats_; }
  std::size_t pending_refreshes() const { return refreshes_.size(); }
  TcpStore* store() { return store_; }

 private:
  struct PendingRefresh {
    std::optional<FlowState> queued;  // Latest state waiting for the wire.
  };

  Ack TimedAck(Ack done);
  void IssueRefresh(const std::string& key, const FlowState& state);

  TcpStore* store_;
  sim::Simulator* sim_ = nullptr;
  sim::Histogram* store_wait_ms_ = nullptr;
  StoreSessionStats stats_;
  // Client key -> in-flight refresh bookkeeping.
  std::unordered_map<std::string, PendingRefresh> refreshes_;
};

}  // namespace yoda

#endif  // SRC_CORE_STORE_SESSION_H_
