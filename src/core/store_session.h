// StoreSession: the one place that owns the paper's "write exactly at the
// ACK points" contract (Fig 3) in front of TcpStore/ReplicatingClient.
//
// The session runs each write in one of two per-flow modes (the flow latches
// its VIP's StoreMode at creation):
//
//   StoreMode::kStateful — the paper's contract. ACK-point writes (storage-a
//   before the SYN-ACK may be sent, storage-b before the server's SYN-ACK
//   may be ACKed) gate protocol progress: the caller supplies a completion
//   and must not emit the corresponding ACK until it fires. StoreSession
//   times the blocking wait into the per-stage store histogram. Non-gating
//   refreshes (HTTP/1.1 re-switch order, mirror-winner retarget) are
//   write-behind and coalesced per flow.
//
//   StoreMode::kStateless — the stateless fast path. The same calls demote
//   to entries in a write-behind takeover journal: the completion fires
//   inline (zero synchronous store writes; the signed cookie carries the
//   recoverable state), dirty flow states coalesce in a map keyed by the
//   client flow key, and a periodic timer flushes the batch to TCPStore
//   solely so TakeoverEngine has a fallback for flows the cookie cannot
//   describe. A teardown whose flow never reached the store is dropped
//   locally; one that was flushed becomes a journaled tombstone.
//
// Teardown removes drop any queued refresh for the flow first, so a stale
// refresh cannot resurrect a deleted key from this instance.

#ifndef SRC_CORE_STORE_SESSION_H_
#define SRC_CORE_STORE_SESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/core/flow_state.h"
#include "src/core/tcp_store.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"

namespace yoda {

struct StoreSessionStats {
  std::uint64_t ack_point_writes = 0;   // Synchronous storage-a + storage-b.
  std::uint64_t refreshes = 0;          // Write-behind updates requested.
  std::uint64_t refreshes_coalesced = 0;  // Collapsed into an in-flight write.
  std::uint64_t removes = 0;            // Teardown requests (either mode).
  std::uint64_t sync_removes = 0;       // Removes issued straight to the store.
  // Stateless mode: write-behind takeover journal.
  std::uint64_t journal_appends = 0;    // Upserts/tombstones queued.
  std::uint64_t journal_coalesced = 0;  // Queued entries overwritten in place.
  std::uint64_t journal_flushes = 0;    // Batched flush rounds issued.
  std::uint64_t journal_entries_flushed = 0;  // Entries written across rounds.
};

class StoreSession {
 public:
  using Ack = TcpStore::Ack;
  using Lookup = TcpStore::Lookup;

  // `store_wait_ms` (optional) receives the blocking duration of every
  // ACK-point write; `sim` is required only when the histogram or the
  // journal (stateless mode) is used.
  StoreSession(TcpStore* store, sim::Simulator* sim = nullptr,
               sim::Histogram* store_wait_ms = nullptr);
  StoreSession(const StoreSession&) = delete;
  StoreSession& operator=(const StoreSession&) = delete;

  // Late binding for owners that resolve the histogram after construction.
  void set_store_wait_histogram(sim::Histogram* h) { store_wait_ms_ = h; }
  // Per-round journal batch size (flush depth) histogram; optional.
  void set_journal_flush_depth_histogram(sim::Histogram* h) { journal_depth_hist_ = h; }
  // Owner liveness: a crashed instance's pending flush must not fire.
  void set_liveness(const bool* failed) { failed_ = failed; }
  // How long dirty journal entries may coalesce before a batched flush.
  void set_journal_flush_interval(sim::Duration d) { journal_flush_interval_ = d; }

  // storage-a: in kStateful, must complete before the SYN-ACK is emitted; in
  // kStateless it journals the state and completes inline.
  void WriteSynState(const FlowState& state, StoreMode mode, Ack done);
  void WriteSynState(const FlowState& state, Ack done) {
    WriteSynState(state, StoreMode::kStateful, std::move(done));
  }
  // storage-b: in kStateful, must complete before the server SYN-ACK is
  // ACKed; in kStateless it journals and completes inline.
  void WriteEstablishedState(const FlowState& state, StoreMode mode, Ack done);
  void WriteEstablishedState(const FlowState& state, Ack done) {
    WriteEstablishedState(state, StoreMode::kStateful, std::move(done));
  }

  // Write-behind refresh of an already-established flow's state; coalesced
  // (kStateful) or journaled (kStateless).
  void Refresh(const FlowState& state, StoreMode mode = StoreMode::kStateful);

  // Teardown (fire-and-forget); cancels any queued refresh for the flow. In
  // kStateless a never-flushed flow is dropped without touching the store; a
  // flushed one leaves a journaled tombstone.
  void Remove(const FlowState& state, StoreMode mode = StoreMode::kStateful);

  void LookupByClient(net::IpAddr vip, net::Port vip_port, net::IpAddr client_ip,
                      net::Port client_port, Lookup done);
  void LookupByServer(net::IpAddr backend_ip, net::Port backend_port, net::IpAddr vip,
                      net::Port client_port, Lookup done);

  // Flushes every dirty journal entry now (tests / orderly shutdown).
  void FlushJournalNow();

  // Owner crashed: unflushed journal entries die with the instance (the
  // cookie, or a previously flushed store entry, is what survives).
  void DropJournal() {
    journal_.clear();
    flushed_.clear();
    journal_timer_.Cancel();
    journal_timer_armed_ = false;
  }

  const StoreSessionStats& stats() const { return stats_; }
  std::size_t pending_refreshes() const { return refreshes_.size(); }
  std::size_t journal_depth() const { return journal_.size(); }
  TcpStore* store() { return store_; }

 private:
  struct PendingRefresh {
    std::optional<FlowState> queued;  // Latest state waiting for the wire.
  };
  struct JournalEntry {
    FlowState state;      // Latest dirty state (also keys the tombstone).
    bool remove = false;  // Tombstone: delete instead of write.
  };

  Ack TimedAck(Ack done);
  void IssueRefresh(const std::string& key, const FlowState& state);
  void Journal(const FlowState& state, bool remove);
  void ArmJournalTimer();
  bool alive() const { return failed_ == nullptr || !*failed_; }

  TcpStore* store_;
  sim::Simulator* sim_ = nullptr;
  sim::Histogram* store_wait_ms_ = nullptr;
  sim::Histogram* journal_depth_hist_ = nullptr;
  const bool* failed_ = nullptr;
  sim::Duration journal_flush_interval_ = sim::Msec(5);
  StoreSessionStats stats_;
  // Client key -> in-flight refresh bookkeeping.
  std::unordered_map<std::string, PendingRefresh> refreshes_;
  // Client key -> dirty state awaiting the next batched flush.
  std::unordered_map<std::string, JournalEntry> journal_;
  // Client keys this session has ever written to the store from the journal
  // (their teardown needs a tombstone; never-flushed flows do not).
  std::unordered_set<std::string> flushed_;
  sim::TimerHandle journal_timer_;
  bool journal_timer_armed_ = false;
};

}  // namespace yoda

#endif  // SRC_CORE_STORE_SESSION_H_
