// TakeoverEngine: mid-stream flow adoption (paper Fig 5).
//
// A packet for an unknown flow parks in kTakeoverLookup while the TCPStore
// is queried — by client key for client-side traffic, by server key for
// return traffic. Misses are re-fetched with doubling backoff (a replica may
// be lagging or mid-restart); only the final miss resets the flow explicitly
// (kFlowReset/kTakeoverMiss) instead of silently dropping it. A hit adopts
// the flow: tunneling state resumes directly in kEstablished, connection
// state re-enters header assembly (the client's un-ACKed bytes will be
// retransmitted in full, and a TLS handshake replays deterministically).

#ifndef SRC_CORE_TAKEOVER_ENGINE_H_
#define SRC_CORE_TAKEOVER_ENGINE_H_

#include "src/core/pipeline.h"

namespace yoda {

class TakeoverEngine {
 public:
  explicit TakeoverEngine(PipelineContext* ctx) : ctx_(ctx) {}

  // Client-side packet for a flow this instance does not know.
  void TakeoverClientSide(const FlowKey& key, const net::Packet& p);
  // Server-side packet whose tuple is not in the reverse index.
  void TakeoverServerSide(const net::Packet& p, VipState& vip);

  // Installs the looked-up state locally and replays any stalled packets.
  void AdoptFlow(const FlowKey& key, const FlowState& st);

 private:
  // Stateless fast path: reconstruct the flow from the packet's signed
  // cookie (zero store round-trips). False when the VIP is stateful, the
  // token is absent/forged/stale, or the claims are journal-pinned — the
  // caller falls back to the store (journal) lookup.
  bool TryCookieAdopt(const FlowKey& key, const net::Packet& p);

  // Bounded re-fetch plumbing for TCPStore misses during takeover.
  void ClientTakeoverLookup(const FlowKey& key, int attempt);
  void ServerTakeoverLookup(const net::Packet& p, int attempt);

  PipelineContext* ctx_;
};

}  // namespace yoda

#endif  // SRC_CORE_TAKEOVER_ENGINE_H_
