// HandshakeEngine: the connection-phase handshake stage (paper §4.1, Fig 3).
//
// Owns everything handshake-shaped on both sides of the LB:
//   - client SYN capture, the storage-a ACK-point write, and the
//     *deterministic* SYN-ACK (ISN = hash of the flow identity, so any
//     instance answers identically and nothing extra needs storing);
//   - the TLS certificate flight and deterministic session-key derivation
//     for SSL-terminated VIPs (§5.2) — byte-identical on replay, which is
//     what makes connection-phase takeover work for TLS too;
//   - the VIP-sourced server-side SYN (reusing the client ISN), its retry
//     timer, and the server SYN-ACK handling with the storage-b ACK-point
//     write that must land *before* the SYN-ACK is ACKed.

#ifndef SRC_CORE_HANDSHAKE_ENGINE_H_
#define SRC_CORE_HANDSHAKE_ENGINE_H_

#include "src/core/pipeline.h"

namespace yoda {

class HandshakeEngine {
 public:
  explicit HandshakeEngine(PipelineContext* ctx) : ctx_(ctx) {}

  // Client SYN: a brand-new flow, a retransmit (answered deterministically),
  // or an ephemeral-port wrap-around (old flow dropped, fresh start).
  void OnClientSyn(const net::Packet& syn, VipState& vip);

  // Deterministic SYN-ACK for a flow whose storage-a write has landed.
  void SendSynAck(const FlowKey& key, const LocalFlow& flow);

  // TLS record processing over the assembled client bytes: answers hellos
  // with the certificate flight, derives the session key, decrypts appdata
  // into the flow's request parser.
  void TlsConnectionPhase(const FlowKey& key, LocalFlow& flow, VipState& vip);
  void SendCertificateFlight(const FlowKey& key, LocalFlow& flow, const VipState& vip);

  // Server-side SYN (first attempt or timer-driven retry).
  void SendServerSyn(const FlowKey& key, LocalFlow& flow);

  // Server SYN-ACK: derive the splice deltas, run storage-b, then hand the
  // flow to the dispatcher for request forwarding.
  void OnServerSynAck(const FlowKey& key, LocalFlow& flow, const net::Packet& p);

 private:
  void StartNewFlow(const net::Packet& syn, VipState& vip);

  PipelineContext* ctx_;
};

}  // namespace yoda

#endif  // SRC_CORE_HANDSHAKE_ENGINE_H_
