#include "src/core/auto_scaler.h"

#include <algorithm>

namespace yoda {

int AutoScaler::Tick(const std::vector<YodaInstance*>& active, int spares_available,
                     sim::Time now) {
  if (active.empty()) {
    return 0;
  }
  double total = 0;
  for (YodaInstance* i : active) {
    total += i->cpu().Utilization(now);
  }
  const double mean = total / static_cast<double>(active.size());
  if (mean > cfg_.scale_out_cpu) {
    ++over_threshold_ticks_;
  } else {
    over_threshold_ticks_ = 0;
  }
  if (over_threshold_ticks_ < cfg_.scale_out_ticks || spares_available <= 0) {
    return 0;
  }
  over_threshold_ticks_ = 0;
  return std::min(cfg_.scale_out_step, spares_available);
}

}  // namespace yoda
