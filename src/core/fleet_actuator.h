// FleetActuator: the ONLY code in the control plane that touches Yoda
// instances and the L4 fabric. Every live reconfiguration — VIP lifecycle,
// rule swaps, assignment rollouts, failure eviction, repair, scale-out — is
// expressed as an epoch-stamped ExecPlan and pushed through Execute(), which
// applies the steps in make-before-break order:
//
//   make phase:   kInstallRules / kAddPoolMember / kProgramPool / kAttachVip
//   barrier:      kAwaitConvergence — the break phase is deferred until the
//                 staggered (non-atomic, §4.5) mux updates have landed on the
//                 last mux
//   break phase:  kRemovePoolMember / kScrubRules / kDetachVip / kEvictInstance
//
// Steps are idempotent under retry: a (epoch, step) pair that already ran is
// skipped (no double pool-add, no double counter bump), mux writes are
// epoch-gated (a newer rollout can overtake an in-flight one; the stale tail
// is dropped by the muxes), and kScrubRules consults the CURRENT desired
// state so a stale scrub cannot strip rules a later epoch re-installed.
//
// Every plan and step lands in the flight recorder (kReconcilePlan /
// kReconcileStep / kReconcileDone, plus kPoolMemberAdd recorded at the
// moment the LAST mux converges and kPoolMemberRemove at the FIRST mux drop
// — the conservative bounds the blackout invariant checks), and mirrors into
// "controller.reconcile.*" counters.

#ifndef SRC_CORE_FLEET_ACTUATOR_H_
#define SRC_CORE_FLEET_ACTUATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/assign/update_planner.h"
#include "src/core/control_state.h"
#include "src/core/yoda_instance.h"
#include "src/l4lb/fabric.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace yoda {

enum class ExecStepKind : std::uint8_t {
  kAttachVip,         // Route the VIP through the fabric.
  kInstallRules,      // Push the VIP's desired rules onto `instance`.
  kAddPoolMember,     // Add (vip, instance) to the mux pools (staggered).
  kProgramPool,       // Overwrite the VIP's pool with `pool` on every mux.
  kSetBackendHealth,  // Propagate backend health to `instance`.
  kAwaitConvergence,  // Barrier: defer later steps until muxes converge.
  kRemovePoolMember,  // Remove (vip, instance) from the mux pools.
  kScrubRules,        // Drop the VIP's rules from `instance` (guarded).
  kDetachVip,         // Unroute the VIP.
  kEvictInstance,     // Failure path: drop `instance` from every pool + SNAT.
  kSetStoreMode,      // Flip the VIP's store contract; `healthy` reused as the
                      // stateless flag, instance 0 targets the muxes.
};

const char* ExecStepKindName(ExecStepKind kind);

struct ExecStep {
  ExecStepKind kind = ExecStepKind::kInstallRules;
  net::IpAddr vip = 0;
  net::IpAddr instance = 0;            // Instance (or backend for health).
  bool healthy = true;                 // kSetBackendHealth payload.
  std::vector<net::IpAddr> pool;       // kProgramPool payload.
};

struct ExecPlan {
  std::uint64_t epoch = 0;
  std::string reason;
  // Staggered plans spread pool writes across muxes `mux_stagger` apart
  // (the §4.5 non-atomic update); unstaggered plans apply atomically
  // (bootstrap, failure eviction — where waiting would serve a dead ip).
  bool staggered = false;
  std::vector<ExecStep> steps;
  // Controller HA: the leader lease's fencing token stamped on every data-
  // plane write this plan makes (0 = unfenced, single-controller mode), and
  // a monotone id distinguishing plans that share an epoch (e.g. the
  // auto-scale round's catch-up plans + pool sync) in the durable journal.
  std::uint64_t fencing_token = 0;
  std::uint64_t plan_id = 0;
};

// The actuator's append-only execution journal (tests inspect it to verify
// make-before-break ordering; ctl_dump prints it as the reconcile timeline).
struct ExecutedStep {
  std::uint64_t epoch = 0;
  sim::Time at = 0;
  ExecStep step;
  // Skipped: this (epoch, step) already ran, the stale-scrub guard declined,
  // or the step's target (VIP / instance) no longer exists.
  bool replayed = false;
};

struct FleetActuatorConfig {
  sim::Duration mux_stagger = sim::Msec(50);
  obs::Registry* registry = nullptr;
  obs::FlightRecorder* recorder = nullptr;
  // --- bounded per-step retry (0 = off: a step applies exactly once) ---
  // A step whose target instance is registered but currently failed() is
  // retried with exponential backoff (step_retry_backoff, doubling) up to
  // max_step_retries times before it is declared stalled: the step is
  // skipped, "controller.reconcile.step_stalled" bumps, kReconcileStalled is
  // recorded, the ROUND is marked failed — but the plan's remaining steps
  // still run (a permanently dead target must not wedge the rollout; the
  // health monitor's evict plan supersedes it).
  int max_step_retries = 0;
  sim::Duration step_retry_backoff = sim::Msec(25);
  // --- controller HA hooks (all optional) ---
  // Consulted before every RunSteps resumption of a fenced plan; returning
  // false aborts the remainder (kReconcileAbort). Wired by the controller to
  // "token is still MY live lease token", which kills a crashed/deposed
  // leader's parked barrier closures — the sim never cancels scheduled
  // events, so the closure fires and must disarm itself.
  std::function<bool(std::uint64_t token)> token_valid;
  // Fires once per ledger insertion (the step kinds the replay ledger
  // tracks), i.e. exactly the set a resumed leader must not re-apply; the
  // controller journals these as durable applied-markers.
  std::function<void(const ExecPlan&, const ExecStep&)> on_step_applied;
  // Fires when the plan's last step ran (ok = no step stalled). Not fired
  // for aborted plans: a deposed leader must not journal completion of a
  // plan the new leader now owns.
  std::function<void(const ExecPlan&, bool ok)> on_plan_done;
  // --- intra-cell sharding hooks (both optional) ---
  // Runs an instance-state write (InstallVip / SetBackendHealth / RemoveVip)
  // "on" the instance: the testbed wires this to a cross-shard CallOn onto
  // the instance's owning shard. The write is fire-and-forget (lands at the
  // next barrier); ledger/journal/counters stay controller-side at dispatch
  // time. Unset = run inline (legacy single-sim behavior).
  std::function<void(YodaInstance*, std::function<void()>)> run_on_instance;
  // Replaces the retry probe's instance->failed() read, which is not safe
  // across shards. The testbed wires it to the network's shard-replicated
  // down flag for the instance's ip.
  std::function<bool(const YodaInstance*)> instance_down;
};

class FleetActuator {
 public:
  FleetActuator(sim::Simulator* simulator, l4lb::L4Fabric* fabric, const ControlState* state,
                FleetActuatorConfig config);

  // Instances the actuator may address (active, suspended and spare).
  void RegisterInstance(YodaInstance* instance);
  YodaInstance* InstanceByIp(net::IpAddr ip) const;

  // Executes `plan`: make phase now, break phase after mux convergence (for
  // staggered plans with a barrier). Idempotent per (epoch, step).
  void Execute(const ExecPlan& plan);

  // Seeds the replay ledger without side effects: a controller restored from
  // the durable journal marks the crashed leader's already-applied steps so
  // resuming the plan re-runs only the remainder (zero double applications).
  void MarkApplied(std::uint64_t epoch, const ExecStep& step);

  const std::vector<ExecutedStep>& journal() const { return journal_; }
  // Plans whose break phase has not landed yet.
  int plans_in_flight() const { return plans_in_flight_; }

 private:
  enum class ApplyResult : std::uint8_t { kDone, kRetry };

  // `attempt` is the retry attempt for step `first` (0 on the first try and
  // for every later step); `failed` carries "some step stalled" to the end.
  void RunSteps(const ExecPlan& plan, std::size_t first, int attempt, bool failed);
  ApplyResult Apply(const ExecPlan& plan, const ExecStep& step);
  void Record(obs::EventType type, std::uint32_t where, std::uint64_t detail);

  sim::Simulator* sim_;
  l4lb::L4Fabric* fabric_;
  const ControlState* state_;
  FleetActuatorConfig cfg_;
  std::map<net::IpAddr, YodaInstance*> instances_;
  std::vector<ExecutedStep> journal_;
  // Idempotency ledger: (epoch, kind, vip, instance) steps already applied.
  std::set<std::tuple<std::uint64_t, std::uint8_t, net::IpAddr, net::IpAddr>> applied_;
  int plans_in_flight_ = 0;

  obs::Counter* plans_ctr_ = nullptr;
  obs::Counter* steps_ctr_ = nullptr;
  obs::Counter* replayed_ctr_ = nullptr;
  obs::Counter* rule_updates_ctr_ = nullptr;
  obs::Counter* pool_updates_ctr_ = nullptr;
  obs::Counter* converge_waits_ctr_ = nullptr;
  obs::Counter* step_retries_ctr_ = nullptr;
  obs::Counter* step_stalled_ctr_ = nullptr;
  obs::Counter* rounds_failed_ctr_ = nullptr;
  obs::Counter* aborted_ctr_ = nullptr;
};

// --- plan builders (pure functions of desired state + fleet view) ---
// The Controller is wiring: it mutates ControlState, calls one builder, and
// hands the plan to the actuator.

ExecPlan BuildDefineVipPlan(const ControlState& state, std::uint64_t epoch, net::IpAddr vip,
                            const std::vector<net::IpAddr>& active_ips);
ExecPlan BuildRemoveVipPlan(std::uint64_t epoch, net::IpAddr vip,
                            const std::vector<net::IpAddr>& active_ips);
ExecPlan BuildRuleUpdatePlan(const ControlState& state, std::uint64_t epoch, net::IpAddr vip,
                             const std::vector<net::IpAddr>& active_ips);
// Rules + backend health for a late-added or readmitted instance, plus
// (readmit) re-pooling it wherever it is desired.
ExecPlan BuildCatchUpPlan(const ControlState& state, std::uint64_t epoch,
                          net::IpAddr instance,
                          const std::vector<std::pair<net::IpAddr, bool>>& backend_health,
                          bool repool, const std::vector<net::IpAddr>& active_ips);
// Reprogram every VIP's pool to desired (all-to-all = active_ips).
ExecPlan BuildPoolSyncPlan(const ControlState& state, std::uint64_t epoch,
                           const std::vector<net::IpAddr>& active_ips, bool staggered,
                           const std::string& reason);
// Failure path: evict a dead instance everywhere, then resync pools.
ExecPlan BuildEvictPlan(const ControlState& state, std::uint64_t epoch, net::IpAddr dead,
                        const std::vector<net::IpAddr>& active_ips);
ExecPlan BuildBackendHealthPlan(std::uint64_t epoch, net::IpAddr backend, bool healthy,
                                const std::vector<net::IpAddr>& active_ips);
// New-leader resync: reassert the restored desired state fleet-wide under
// the new lease token — rules first on every desired member, then the pool
// per VIP (make-before-break), plus the VIP attachments. Heals whatever the
// crashed leader's unjournaled trailing writes left behind; idempotent
// against state the fleet already holds.
ExecPlan BuildLeaderTakeoverPlan(const ControlState& state, std::uint64_t epoch,
                                 const std::vector<net::IpAddr>& active_ips);
// Maps an AssignmentEngine round's make-before-break PlanSteps (index space)
// onto instance ips. `vip_order` / `instance_order` are the round's spaces.
ExecPlan BuildRolloutPlan(std::uint64_t epoch, const std::vector<assign::PlanStep>& steps,
                          const std::vector<net::IpAddr>& instance_order,
                          const std::string& reason);
// Make-before-break store-mode flip: every desired instance first (new flows
// latch the new mode; cookie epoch = `epoch`), then a convergence barrier,
// then the muxes — so a re-steered packet never reaches a member that has
// not switched yet.
ExecPlan BuildStoreModePlan(const ControlState& state, std::uint64_t epoch, net::IpAddr vip,
                            StoreMode mode, const std::vector<net::IpAddr>& active_ips);

}  // namespace yoda

#endif  // SRC_CORE_FLEET_ACTUATOR_H_
