#include "src/baseline/proxy_instance.h"

#include <utility>

namespace baseline {

ProxyInstance::ProxyInstance(sim::Simulator* simulator, net::Network* network,
                             std::uint64_t seed, ProxyConfig config)
    : sim_(simulator),
      net_(network),
      rng_(seed),
      cfg_(config),
      cpu_(config.cpu_costs, config.cores) {
  net_->Attach(cfg_.ip, this);
}

ProxyInstance::~ProxyInstance() = default;

void ProxyInstance::InstallRules(std::vector<rules::Rule> proxy_rules) {
  table_.ReplaceAll(std::move(proxy_rules));
}

void ProxyInstance::SetBackendHealth(net::IpAddr backend, bool healthy) {
  backend_health_[backend] = healthy;
}

void ProxyInstance::Fail() {
  failed_ = true;
  // The whole process dies: no FIN or RST is emitted for any connection.
  conns_.clear();
  demux_.clear();
}

void ProxyInstance::Recover() { failed_ = false; }

void ProxyInstance::HandlePacket(const net::Packet& p) {
  if (failed_) {
    return;
  }
  auto it = demux_.find(p.tuple());
  if (it != demux_.end() && p.syn() && !p.ack_flag() && p.dport == cfg_.port) {
    // Port reuse: a fresh SYN on a tuple whose old splice already finished.
    auto conn = conns_.find(it->second);
    const net::TcpEndpoint* old_ep =
        conn == conns_.end() ? nullptr : conn->second->client_ep.get();
    if (old_ep == nullptr || old_ep->state() == net::TcpState::kTimeWait ||
        old_ep->state() == net::TcpState::kClosed ||
        old_ep->state() == net::TcpState::kReset) {
      demux_.erase(it);
      it = demux_.end();
    }
  }
  if (it != demux_.end()) {
    auto conn = conns_.find(it->second);
    if (conn == conns_.end()) {
      demux_.erase(it);
      return;
    }
    Splice& s = *conn->second;
    // Client-side packets target our listening port.
    if (p.dport == cfg_.port && s.client_ep != nullptr) {
      s.client_ep->HandlePacket(p);
    } else if (s.server_ep != nullptr) {
      s.server_ep->HandlePacket(p);
    }
    MaybeGarbageCollect(it->second);
    return;
  }
  if (p.syn() && !p.ack_flag() && p.dport == cfg_.port) {
    AcceptClient(p);
    return;
  }
  // Unknown flow (e.g. packets from before a crash, after recovery): a real
  // kernel answers RST.
  if (!p.rst()) {
    net_->Send(net::MakeRst(p));
  }
}

void ProxyInstance::AcceptClient(const net::Packet& syn) {
  const std::uint64_t id = next_id_++;
  auto splice = std::make_unique<Splice>();
  splice->accepted = sim_->now();
  auto* s = splice.get();
  conns_[id] = std::move(splice);
  demux_[syn.tuple()] = id;
  ++stats_.connections_accepted;
  cpu_.ChargeConnection();

  s->client_ep = std::make_unique<net::TcpEndpoint>(
      sim_, [this](net::Packet p) { net_->Send(std::move(p)); }, cfg_.tcp);
  s->client_ep->set_on_data([this, id](std::string_view bytes) { OnClientData(id, bytes); });
  s->client_ep->set_on_closed([this, id]() {
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      return;
    }
    it->second->client_closed = true;
    // Run the close through the same delayed pipeline as spliced data, so
    // chunks already in flight inside the proxy are not dropped.
    sim_->After(cfg_.cpu_costs.forward_delay, [this, id]() {
      auto cit = conns_.find(id);
      if (cit != conns_.end() && cit->second->server_ep != nullptr && !failed_) {
        cit->second->server_ep->Close();
      }
      MaybeGarbageCollect(id);
    });
  });
  s->client_ep->set_on_reset([this, id]() { MaybeGarbageCollect(id); });
  s->client_ep->AcceptFrom(syn, static_cast<std::uint32_t>(rng_.UniformInt(1, 1u << 30)));
}

void ProxyInstance::OnClientData(std::uint64_t id, std::string_view bytes) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Splice& s = *it->second;
  cpu_.ChargePacket();
  stats_.spliced_bytes += bytes.size();
  if (s.server_connected) {
    // Tunnel onward after the proxy's processing delay.
    std::string data(bytes);
    sim_->After(cfg_.cpu_costs.forward_delay, [this, id, data = std::move(data)]() {
      auto cit = conns_.find(id);
      if (cit != conns_.end() && cit->second->server_ep != nullptr && !failed_) {
        cit->second->server_ep->Send(data);
      }
    });
    return;
  }
  s.to_server.append(bytes);
  s.parser.Feed(bytes);
  if (s.parser.HaveHeaders() && s.server_ep == nullptr) {
    rules::SelectionContext ctx;
    ctx.rng = &rng_;
    ctx.sticky = &sticky_;
    ctx.is_healthy = [this](const rules::Backend& b) {
      auto hit = backend_health_.find(b.ip);
      return hit == backend_health_.end() || hit->second;
    };
    ctx.load_of = [this](const rules::Backend& b) {
      auto lit = backend_load_.find(b.ip);
      return lit == backend_load_.end() ? 0 : lit->second;
    };
    s.accepted = sim_->now();  // Fig 9 "Connection" measurement starts here.
    auto sel = table_.Select(s.parser.request(), ctx);
    if (!sel) {
      ++stats_.no_backend_resets;
      s.client_ep->Abort();
      MaybeGarbageCollect(id);
      return;
    }
    cpu_.ChargeRuleScan(sel->rules_scanned);
    const sim::Duration delay = cfg_.rule_scan_base_delay +
                                cfg_.rule_scan_per_rule_delay * sel->rules_scanned +
                                cfg_.cpu_costs.connection_delay;
    const rules::Backend backend = sel->backend;
    sim_->After(delay, [this, id, backend]() {
      if (!failed_ && conns_.contains(id)) {
        ConnectBackend(id, backend);
      }
    });
  }
}

void ProxyInstance::ConnectBackend(std::uint64_t id, const rules::Backend& backend) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Splice& s = *it->second;
  ++stats_.backend_connects;
  backend_load_[backend.ip] += 1;
  cpu_.ChargeConnection();

  s.server_ep = std::make_unique<net::TcpEndpoint>(
      sim_, [this](net::Packet p) { net_->Send(std::move(p)); }, cfg_.tcp);
  const net::Port sport = next_ephemeral_++;
  if (next_ephemeral_ == 0) {
    next_ephemeral_ = 20000;
  }
  demux_[net::FiveTuple{backend.ip, cfg_.ip, backend.port, sport}] = id;

  s.server_ep->set_on_connected([this, id]() {
    auto cit = conns_.find(id);
    if (cit == conns_.end()) {
      return;
    }
    Splice& sp = *cit->second;
    sp.server_connected = true;
    connection_phase_ms_.Add(sim::ToMillis(sim_->now() - sp.accepted));
    ++stats_.requests_proxied;
    if (!sp.to_server.empty()) {
      sp.server_ep->Send(std::move(sp.to_server));
      sp.to_server.clear();
    }
  });
  s.server_ep->set_on_data([this, id](std::string_view bytes) {
    auto cit = conns_.find(id);
    if (cit == conns_.end()) {
      return;
    }
    cpu_.ChargePacket();
    stats_.spliced_bytes += bytes.size();
    std::string data(bytes);
    sim_->After(cfg_.cpu_costs.forward_delay, [this, id, data = std::move(data)]() {
      auto c2 = conns_.find(id);
      if (c2 != conns_.end() && c2->second->client_ep != nullptr && !failed_) {
        c2->second->client_ep->Send(data);
      }
    });
  });
  s.server_ep->set_on_closed([this, id]() {
    auto cit = conns_.find(id);
    if (cit == conns_.end()) {
      return;
    }
    cit->second->server_closed = true;
    // Backend finished: half-close toward the client, behind any spliced
    // data still inside the proxy's forwarding pipeline.
    sim_->After(cfg_.cpu_costs.forward_delay, [this, id]() {
      auto c2 = conns_.find(id);
      if (c2 != conns_.end() && c2->second->client_ep != nullptr && !failed_) {
        c2->second->client_ep->Close();
      }
      MaybeGarbageCollect(id);
    });
  });
  s.server_ep->set_on_reset([this, id]() { MaybeGarbageCollect(id); });
  s.server_ep->set_on_failed([this, id]() {
    auto cit = conns_.find(id);
    if (cit != conns_.end() && cit->second->client_ep != nullptr) {
      cit->second->client_ep->Abort();
    }
    MaybeGarbageCollect(id);
  });

  s.server_ep->Connect(cfg_.ip, sport, backend.ip, backend.port,
                       static_cast<std::uint32_t>(rng_.UniformInt(1, 1u << 30)));
}

void ProxyInstance::MaybeGarbageCollect(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return;
  }
  Splice& s = *it->second;
  const bool client_dead =
      s.client_ep == nullptr || s.client_ep->state() == net::TcpState::kClosed ||
      s.client_ep->state() == net::TcpState::kReset ||
      s.client_ep->state() == net::TcpState::kTimeWait;
  const bool server_dead =
      s.server_ep == nullptr || s.server_ep->state() == net::TcpState::kClosed ||
      s.server_ep->state() == net::TcpState::kReset ||
      s.server_ep->state() == net::TcpState::kTimeWait;
  if (!client_dead || !server_dead) {
    return;
  }
  // Give TIME_WAIT endpoints a grace period before reclaiming the tuples.
  sim_->After(sim::Sec(2), [this, id]() {
    auto cit = conns_.find(id);
    if (cit == conns_.end()) {
      return;
    }
    for (auto dit = demux_.begin(); dit != demux_.end();) {
      if (dit->second == id) {
        dit = demux_.erase(dit);
      } else {
        ++dit;
      }
    }
    conns_.erase(cit);
  });
}

}  // namespace baseline
