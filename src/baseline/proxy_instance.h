// HAProxy-style baseline L7 proxy (paper §2.2-2.3).
//
// The architecture Yoda is compared against: each proxy instance terminates
// the client TCP connection at its *own* IP (traffic is split across proxy
// instances DNS-style), reads the HTTP request, selects a backend with the
// same rule engine, opens a second connection from its own IP, and splices
// bytes between the two sockets. All flow state is ordinary in-memory TCP
// state — when the instance dies, both connections die with it, the client
// hangs until its HTTP timeout, and nothing can take the flow over. That is
// the single-point-of-failure behaviour of Table 1 / Fig 12.

#ifndef SRC_BASELINE_PROXY_INSTANCE_H_
#define SRC_BASELINE_PROXY_INSTANCE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/cpu_model.h"
#include "src/http/parser.h"
#include "src/net/network.h"
#include "src/net/tcp_endpoint.h"
#include "src/rules/rule_table.h"
#include "src/sim/random.h"

namespace baseline {

struct ProxyConfig {
  net::IpAddr ip = 0;
  net::Port port = 80;
  yoda::CpuCosts cpu_costs = yoda::HaproxyKernelCosts();
  double cores = 1.0;
  sim::Duration rule_scan_base_delay = sim::Usec(300);
  sim::Duration rule_scan_per_rule_delay = sim::Nsec(900);
  net::TcpConfig tcp;
};

struct ProxyStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_proxied = 0;
  std::uint64_t backend_connects = 0;
  std::uint64_t no_backend_resets = 0;
  std::uint64_t spliced_bytes = 0;
};

class ProxyInstance : public net::Node {
 public:
  ProxyInstance(sim::Simulator* simulator, net::Network* network, std::uint64_t seed,
                ProxyConfig config);
  ~ProxyInstance() override;

  net::IpAddr ip() const { return cfg_.ip; }

  void InstallRules(std::vector<rules::Rule> proxy_rules);
  void SetBackendHealth(net::IpAddr backend, bool healthy);

  // Crash: every in-flight connection's state is destroyed (no FIN/RST goes
  // out — the host is gone). The caller also marks the node down.
  void Fail();
  void Recover();
  bool failed() const { return failed_; }

  void HandlePacket(const net::Packet& packet) override;
  // Cold restart (Network::RestartNode): the process comes back empty.
  void OnColdRestart() override { Fail(); Recover(); }

  yoda::CpuModel& cpu() { return cpu_; }
  const ProxyStats& stats() const { return stats_; }
  std::size_t active_connections() const { return conns_.size(); }

  // Accept -> backend-connected duration (Fig 9's "Connection" component).
  sim::Histogram& connection_phase_ms() { return connection_phase_ms_; }

 private:
  struct Splice {
    sim::Time accepted = 0;
    std::unique_ptr<net::TcpEndpoint> client_ep;
    std::unique_ptr<net::TcpEndpoint> server_ep;
    http::RequestParser parser;
    bool server_connected = false;
    std::string to_server;  // Bytes awaiting the backend connection.
    bool client_closed = false;
    bool server_closed = false;
  };

  void AcceptClient(const net::Packet& syn);
  void OnClientData(std::uint64_t id, std::string_view bytes);
  void ConnectBackend(std::uint64_t id, const rules::Backend& backend);
  void MaybeGarbageCollect(std::uint64_t id);

  sim::Simulator* sim_;
  net::Network* net_;
  sim::Rng rng_;
  ProxyConfig cfg_;
  yoda::CpuModel cpu_;
  bool failed_ = false;

  rules::RuleTable table_;
  rules::StickyTable sticky_;
  std::unordered_map<net::IpAddr, bool> backend_health_;
  std::unordered_map<net::IpAddr, int> backend_load_;

  std::uint64_t next_id_ = 1;
  net::Port next_ephemeral_ = 20000;
  std::unordered_map<std::uint64_t, std::unique_ptr<Splice>> conns_;
  // Tuple of incoming packets -> connection id, for both sides.
  std::unordered_map<net::FiveTuple, std::uint64_t, net::FiveTupleHash> demux_;

  ProxyStats stats_;
  sim::Histogram connection_phase_ms_;
};

}  // namespace baseline

#endif  // SRC_BASELINE_PROXY_INSTANCE_H_
