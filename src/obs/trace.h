// Per-flow flight recorder (the "events half" of the observability layer).
//
// Every state transition a flow goes through — the Fig 3 connection phase,
// the two TCPStore writes, takeover adoption, HTTP/1.1 re-switches, mirror
// promotion, teardown — is appended as a typed, timestamped TraceEvent to a
// bounded per-flow ring buffer. Post-hoc analysis (src/obs/analyzer.h)
// reconstructs the paper's latency decompositions and takeover timelines
// directly from these events instead of from bench-local timers: every
// latency claim is reconstructible from the recording.
//
// Bounds: at most `max_flows` flows are tracked (later flows are counted,
// not recorded) and each flow keeps the last `events_per_flow` events (older
// ones are overwritten and counted). Controller/fabric-scope happenings that
// are not tied to one flow (instance down, pool update, rule swap) land in a
// separate bounded system-event log, so flow timelines can be correlated
// with the control plane.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "src/sim/time.h"

namespace obs {

enum class EventType : std::uint8_t {
  // --- flow scope (connection phase, Fig 3) ---
  kClientSyn = 0,        // Client SYN accepted; flow created. where=instance.
  kStorageAWriteStart,   // storage-a write issued to TCPStore.
  kStorageAWriteDone,    // storage-a acked. detail=1 if ok.
  kSynAckSent,           // Deterministic SYN-ACK emitted.
  kBackendSelected,      // Rules matched, backend picked. detail=rules scanned.
  kServerSyn,            // VIP-sourced SYN to the backend. detail=attempt #.
  kStorageBWriteStart,   // storage-b (full state) write issued.
  kStorageBWriteDone,    // storage-b acked. detail=1 if ok.
  kEstablished,          // Tunneling active; server ACKed.
  kRequestForwarded,     // Buffered client request replayed to the backend.
  // --- flow scope (tunneling / recovery, Fig 4-5) ---
  kStoreLookupStart,     // TCPStore lookup issued (takeover path).
  kStoreLookupDone,      // Lookup answered. detail=1 on hit.
  kTakeoverClient,       // Flow adopted from client-side traffic. where=adopter.
  kTakeoverServer,       // Flow adopted from server-side traffic. where=adopter.
  kReSwitch,             // HTTP/1.1 backend switch. detail=new backend ip.
  kMirrorPromote,        // Mirror leg won the race. detail=winner ip.
  kMuxForward,           // L4 mux routed the client SYN. where=mux id,
                         // detail=target instance ip.
  kFin,                  // FIN tunneled. detail: 0=from client, 1=from server.
  kCleanup,              // Local state dropped (and TCPStore keys removed).
  // --- system scope (controller / fabric) ---
  kInstanceDown,         // Monitor removed a failed instance. where=instance.
  kBackendDown,          // Backend marked unhealthy. where=backend.
  kBackendUp,            // Backend marked healthy again. where=backend.
  kPoolUpdate,           // VIP pool reprogrammed on the muxes. where=vip,
                         // detail=pool size (low 32) | plan epoch (high 32;
                         // 0 for legacy unversioned writes).
  kRuleUpdate,           // VIP rules swapped. where=vip, detail=rule count.
  kSpareActivated,       // Elastic scale-out activated a spare. where=instance.
  // --- flow scope (failure-path hardening) ---
  kBackendPinned,        // Flow's backend binding set. detail=backend ip. A
                         // pin may only change after kReSwitch/kMirrorPromote.
  kFlowReset,            // Flow explicitly reset toward the client/backend.
                         // detail=reason (see FlowResetReason).
  kTakeoverRetry,        // Takeover lookup missed; bounded re-fetch scheduled.
                         // detail=attempt #.
  // --- system scope (monitor hysteresis / fault plane) ---
  kInstanceSuspected,    // Probe missed; instance still in pools. detail=miss #.
  kInstanceReadmitted,   // Suspended instance probed healthy and re-pooled.
  kFaultInjected,        // Fault plane applied a fault. where=target,
                         // detail=fault kind.
  kFaultCleared,         // Fault plane removed a fault. where=target,
                         // detail=fault kind.
  // --- system scope (reconciliation control plane) ---
  kConfigChange,         // ControlState changelog entry. where=vip/instance,
                         // detail=epoch (low 32) | change kind (high 32).
  kReconcilePlan,        // UpdatePlan execution began. where=epoch (low 32),
                         // detail=step count.
  kReconcileStep,        // One plan step executed. where=vip,
                         // detail=instance ip (low 32) | step kind (high 32).
  kReconcileDone,        // Plan fully executed. where=epoch (low 32),
                         // detail=steps executed.
  kPoolMemberAdd,        // (vip, instance) added to mux pools. where=vip,
                         // detail=instance ip (low 32) | plan epoch (high 32).
                         // Recorded once converged on the LAST mux
                         // (conservative for blackout checks).
  kPoolMemberRemove,     // (vip, instance) leaving mux pools. where=vip,
                         // detail=instance ip (low 32) | plan epoch (high 32).
                         // Recorded when the FIRST mux drops it (again
                         // conservative).
  kVipRemoved,           // VIP withdrawn from the fabric. where=vip.
  // --- system scope (controller HA: lease, fencing, resume) ---
  kLeaseAcquired,        // Controller won the leader lease. where=controller
                         // ip, detail=fencing token.
  kLeaseRenewed,         // Leader extended its lease. where=controller ip,
                         // detail=fencing token.
  kLeaseLost,            // Leader lost/abandoned the lease (renewal CAS
                         // failed, crash, or resignation). where=controller
                         // ip, detail=fencing token it held.
  kFencedWrite,          // A mux or instance rejected a control write whose
                         // fencing token was older than its watermark.
                         // where=vip (mux side) or instance ip.
                         // detail=(offered token << 32) | watermark.
  kReconcileStalled,     // A plan step exhausted its retry budget (target
                         // unresponsive); the round is marked failed.
                         // where=vip, detail=(step kind << 32) | instance ip.
  kReconcileAbort,       // A deposed/crashed controller's actuator abandoned
                         // an in-flight plan (fencing token no longer valid).
                         // where=epoch (low 32), detail=steps not executed.
  kPlanResumed,          // A newly elected leader re-drove a journaled
                         // in-flight plan. where=epoch (low 32),
                         // detail=(steps already applied << 32) | plan id.
  // --- flow scope (stateless fast path: signed SYN-cookie ISNs) ---
  kCookieAdopt,          // Flow reconstructed from the packet's signed
                         // cookie, no store lookup. detail=backend ip.
  kCookieReject,         // Cookie failed HMAC/epoch verification; takeover
                         // fell back to the journal. detail=1 bad HMAC,
                         // 2 stale epoch.
  // --- system scope (store-mode policy) ---
  kStoreModeSet,         // Per-VIP store mode installed. where=vip,
                         // detail=(mode << 32) | install epoch (low 32).
};

// detail payload of kFlowReset.
enum class FlowResetReason : std::uint64_t {
  kNoBackend = 1,        // No healthy backend for the request.
  kTakeoverMiss = 2,     // TCPStore had no state after bounded re-fetches.
  kClientAbort = 3,      // Client sent RST.
  kVipRemoved = 4,       // VIP withdrawn; in-flight flows drained with RSTs.
  kBadTransition = 5,    // Packet drove an illegal FSM edge; flow reset.
};

// Short stable name ("ClientSyn", "TakeoverClient", ...) for dumps.
const char* EventTypeName(EventType type);

// Client-side flow identity — stable across takeovers and re-switches.
struct FlowId {
  std::uint32_t vip = 0;
  std::uint16_t vip_port = 0;
  std::uint32_t client_ip = 0;
  std::uint16_t client_port = 0;

  bool operator==(const FlowId&) const = default;
};

struct FlowIdHash {
  std::size_t operator()(const FlowId& id) const {
    std::uint64_t x = (static_cast<std::uint64_t>(id.vip) << 32) ^ id.client_ip;
    x ^= (static_cast<std::uint64_t>(id.vip_port) << 48) ^
         (static_cast<std::uint64_t>(id.client_port) << 16);
    // Mix (splitmix64 finalizer).
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

struct TraceEvent {
  sim::Time at = 0;
  EventType type = EventType::kClientSyn;
  std::uint32_t where = 0;   // Instance/backend/vip address (mux id for kMuxForward).
  std::uint64_t detail = 0;  // Event-specific payload; see EventType comments.
};

struct FlightRecorderConfig {
  std::size_t max_flows = 65'536;
  std::size_t events_per_flow = 64;
  std::size_t max_system_events = 8'192;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const FlowId& flow, sim::Time at, EventType type, std::uint32_t where,
              std::uint64_t detail = 0);
  void RecordSystem(sim::Time at, EventType type, std::uint32_t where,
                    std::uint64_t detail = 0);

  // The flow's retained events, oldest first (ring order reconstructed).
  std::vector<TraceEvent> Events(const FlowId& flow) const;
  bool Has(const FlowId& flow) const { return flows_.contains(flow); }

  const std::vector<TraceEvent>& system_events() const { return system_; }

  // Visits every recorded flow in first-seen order.
  void ForEachFlow(
      const std::function<void(const FlowId&, const std::vector<TraceEvent>&)>& fn) const;

  std::size_t flow_count() const { return flows_.size(); }
  // Flows that arrived after max_flows and were not recorded.
  std::uint64_t dropped_flows() const { return dropped_flows_; }
  // Events lost to per-flow ring wrap-around across all flows.
  std::uint64_t overwritten_events() const { return overwritten_events_; }
  std::uint64_t dropped_system_events() const { return dropped_system_; }

  // One JSON object per flow:
  //   {"flow":{...},"events":[{"t_us":...,"type":"...","where":"...","detail":N},...]}
  // followed by one {"system":[...]} line when system events exist.
  void ExportJsonLines(std::ostream& os) const;

  void Clear();

 private:
  struct Ring {
    std::vector<TraceEvent> buf;    // Capacity events_per_flow, append-wrap.
    std::uint64_t total = 0;        // Events ever recorded for this flow.
  };

  FlightRecorderConfig cfg_;
  std::unordered_map<FlowId, Ring, FlowIdHash> flows_;
  std::vector<FlowId> order_;  // First-seen order for deterministic dumps.
  std::vector<TraceEvent> system_;
  std::uint64_t dropped_flows_ = 0;
  std::uint64_t overwritten_events_ = 0;
  std::uint64_t dropped_system_ = 0;
};

}  // namespace obs

#endif  // SRC_OBS_TRACE_H_
