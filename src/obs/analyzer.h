// Post-hoc trace analysis: reconstructs the paper's evaluation artifacts —
// the Fig 9 connection-phase latency decomposition and per-flow takeover
// timelines — directly from FlightRecorder events, so benches report from
// the recording rather than from their own timers.

#ifndef SRC_OBS_ANALYZER_H_
#define SRC_OBS_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "src/obs/trace.h"
#include "src/sim/metrics.h"

namespace obs {

// One flow's reconstructed phases, all in milliseconds of simulated time.
struct FlowBreakdown {
  bool established = false;  // kEstablished present.
  // storage-a / storage-b blocking waits (write start -> ack).
  double storage_a_ms = 0;
  double storage_b_ms = 0;
  double storage_ms = 0;  // a + b: the TCPStore cost on the connection path.
  // Fig 9 "Connection": backend selection -> request forwarded to backend.
  double connection_ms = 0;
  // Rule scan + connection processing: selection -> server SYN emitted.
  double rule_scan_ms = 0;
  int takeovers = 0;
  int reswitches = 0;
  int rules_scanned = 0;  // detail of the first kBackendSelected.
};

// Analyzes one flow's events (oldest-first, as returned by
// FlightRecorder::Events).
FlowBreakdown AnalyzeFlow(const std::vector<TraceEvent>& events);

// Aggregated decomposition over every recorded flow.
struct BreakdownReport {
  sim::Histogram connection_ms;
  sim::Histogram storage_ms;
  sim::Histogram rule_scan_ms;
  std::uint64_t flows_seen = 0;
  std::uint64_t flows_established = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t reswitches = 0;
};
BreakdownReport ReconstructBreakdown(const FlightRecorder& recorder);

// Every takeover adoption across all flows, ordered by time — the raw
// material for Table 1 / Fig 12 style failure-impact timelines.
struct TakeoverRecord {
  FlowId flow;
  TraceEvent event;  // kTakeoverClient or kTakeoverServer; where = adopter.
};
std::vector<TakeoverRecord> TakeoverTimeline(const FlightRecorder& recorder);

// True when the events' timestamps never decrease (recording order is
// chronological by construction; a violation means a recorder bug).
bool TimestampsMonotonic(const std::vector<TraceEvent>& events);

}  // namespace obs

#endif  // SRC_OBS_ANALYZER_H_
