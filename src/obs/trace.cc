#include "src/obs/trace.h"

#include <ostream>

#include "src/obs/registry.h"

namespace obs {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kClientSyn:
      return "ClientSyn";
    case EventType::kStorageAWriteStart:
      return "StorageAWriteStart";
    case EventType::kStorageAWriteDone:
      return "StorageAWriteDone";
    case EventType::kSynAckSent:
      return "SynAckSent";
    case EventType::kBackendSelected:
      return "BackendSelected";
    case EventType::kServerSyn:
      return "ServerSyn";
    case EventType::kStorageBWriteStart:
      return "StorageBWriteStart";
    case EventType::kStorageBWriteDone:
      return "StorageBWriteDone";
    case EventType::kEstablished:
      return "Established";
    case EventType::kRequestForwarded:
      return "RequestForwarded";
    case EventType::kStoreLookupStart:
      return "StoreLookupStart";
    case EventType::kStoreLookupDone:
      return "StoreLookupDone";
    case EventType::kTakeoverClient:
      return "TakeoverClient";
    case EventType::kTakeoverServer:
      return "TakeoverServer";
    case EventType::kReSwitch:
      return "ReSwitch";
    case EventType::kMirrorPromote:
      return "MirrorPromote";
    case EventType::kMuxForward:
      return "MuxForward";
    case EventType::kFin:
      return "Fin";
    case EventType::kCleanup:
      return "Cleanup";
    case EventType::kInstanceDown:
      return "InstanceDown";
    case EventType::kBackendDown:
      return "BackendDown";
    case EventType::kBackendUp:
      return "BackendUp";
    case EventType::kPoolUpdate:
      return "PoolUpdate";
    case EventType::kRuleUpdate:
      return "RuleUpdate";
    case EventType::kSpareActivated:
      return "SpareActivated";
    case EventType::kBackendPinned:
      return "BackendPinned";
    case EventType::kFlowReset:
      return "FlowReset";
    case EventType::kTakeoverRetry:
      return "TakeoverRetry";
    case EventType::kInstanceSuspected:
      return "InstanceSuspected";
    case EventType::kInstanceReadmitted:
      return "InstanceReadmitted";
    case EventType::kFaultInjected:
      return "FaultInjected";
    case EventType::kFaultCleared:
      return "FaultCleared";
    case EventType::kConfigChange:
      return "ConfigChange";
    case EventType::kReconcilePlan:
      return "ReconcilePlan";
    case EventType::kReconcileStep:
      return "ReconcileStep";
    case EventType::kReconcileDone:
      return "ReconcileDone";
    case EventType::kPoolMemberAdd:
      return "PoolMemberAdd";
    case EventType::kPoolMemberRemove:
      return "PoolMemberRemove";
    case EventType::kVipRemoved:
      return "VipRemoved";
    case EventType::kLeaseAcquired:
      return "LeaseAcquired";
    case EventType::kLeaseRenewed:
      return "LeaseRenewed";
    case EventType::kLeaseLost:
      return "LeaseLost";
    case EventType::kFencedWrite:
      return "FencedWrite";
    case EventType::kReconcileStalled:
      return "ReconcileStalled";
    case EventType::kReconcileAbort:
      return "ReconcileAbort";
    case EventType::kPlanResumed:
      return "PlanResumed";
    case EventType::kCookieAdopt:
      return "CookieAdopt";
    case EventType::kCookieReject:
      return "CookieReject";
    case EventType::kStoreModeSet:
      return "StoreModeSet";
  }
  return "Unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config) : cfg_(config) {
  if (cfg_.events_per_flow == 0) {
    cfg_.events_per_flow = 1;
  }
}

void FlightRecorder::Record(const FlowId& flow, sim::Time at, EventType type,
                            std::uint32_t where, std::uint64_t detail) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    if (flows_.size() >= cfg_.max_flows) {
      ++dropped_flows_;
      return;
    }
    it = flows_.emplace(flow, Ring{}).first;
    it->second.buf.reserve(cfg_.events_per_flow);
    order_.push_back(flow);
  }
  Ring& ring = it->second;
  const TraceEvent ev{at, type, where, detail};
  if (ring.buf.size() < cfg_.events_per_flow) {
    ring.buf.push_back(ev);
  } else {
    ring.buf[ring.total % cfg_.events_per_flow] = ev;
    ++overwritten_events_;
  }
  ++ring.total;
}

void FlightRecorder::RecordSystem(sim::Time at, EventType type, std::uint32_t where,
                                  std::uint64_t detail) {
  if (system_.size() >= cfg_.max_system_events) {
    ++dropped_system_;
    return;
  }
  system_.push_back(TraceEvent{at, type, where, detail});
}

std::vector<TraceEvent> FlightRecorder::Events(const FlowId& flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    return {};
  }
  const Ring& ring = it->second;
  if (ring.total <= cfg_.events_per_flow) {
    return ring.buf;
  }
  // Wrapped: oldest element sits at total % capacity.
  std::vector<TraceEvent> out;
  out.reserve(ring.buf.size());
  const std::size_t head = ring.total % cfg_.events_per_flow;
  for (std::size_t i = 0; i < ring.buf.size(); ++i) {
    out.push_back(ring.buf[(head + i) % cfg_.events_per_flow]);
  }
  return out;
}

void FlightRecorder::ForEachFlow(
    const std::function<void(const FlowId&, const std::vector<TraceEvent>&)>& fn) const {
  for (const FlowId& id : order_) {
    fn(id, Events(id));
  }
}

void FlightRecorder::ExportJsonLines(std::ostream& os) const {
  ForEachFlow([&os](const FlowId& id, const std::vector<TraceEvent>& events) {
    os << "{\"flow\":{\"vip\":\"" << FormatIp(id.vip) << "\",\"vip_port\":" << id.vip_port
       << ",\"client\":\"" << FormatIp(id.client_ip) << "\",\"client_port\":" << id.client_port
       << "},\"events\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& ev = events[i];
      if (i > 0) {
        os << ',';
      }
      os << "{\"t_us\":" << sim::FormatDouble(sim::ToMicros(ev.at), 3) << ",\"type\":\""
         << EventTypeName(ev.type) << "\",\"where\":\"" << FormatIp(ev.where)
         << "\",\"detail\":" << ev.detail << '}';
    }
    os << "]}\n";
  });
  if (!system_.empty()) {
    os << "{\"system\":[";
    for (std::size_t i = 0; i < system_.size(); ++i) {
      const TraceEvent& ev = system_[i];
      if (i > 0) {
        os << ',';
      }
      os << "{\"t_us\":" << sim::FormatDouble(sim::ToMicros(ev.at), 3) << ",\"type\":\""
         << EventTypeName(ev.type) << "\",\"where\":\"" << FormatIp(ev.where)
         << "\",\"detail\":" << ev.detail << '}';
    }
    os << "]}\n";
  }
}

void FlightRecorder::Clear() {
  flows_.clear();
  order_.clear();
  system_.clear();
  dropped_flows_ = 0;
  overwritten_events_ = 0;
  dropped_system_ = 0;
}

}  // namespace obs
