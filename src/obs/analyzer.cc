#include "src/obs/analyzer.h"

#include <algorithm>

namespace obs {

FlowBreakdown AnalyzeFlow(const std::vector<TraceEvent>& events) {
  FlowBreakdown out;
  // First occurrence of each phase boundary. Later occurrences (storage-b
  // refreshes during HTTP/1.1 pipelining, re-switch SYNs) are not part of
  // the initial connection path.
  sim::Time a_start = -1, a_done = -1, b_start = -1, b_done = -1;
  sim::Time selected = -1, server_syn = -1, forwarded = -1;
  for (const TraceEvent& ev : events) {
    switch (ev.type) {
      case EventType::kStorageAWriteStart:
        if (a_start < 0) {
          a_start = ev.at;
        }
        break;
      case EventType::kStorageAWriteDone:
        if (a_done < 0) {
          a_done = ev.at;
        }
        break;
      case EventType::kStorageBWriteStart:
        if (b_start < 0) {
          b_start = ev.at;
        }
        break;
      case EventType::kStorageBWriteDone:
        if (b_done < 0) {
          b_done = ev.at;
        }
        break;
      case EventType::kBackendSelected:
        if (selected < 0) {
          selected = ev.at;
          out.rules_scanned = static_cast<int>(ev.detail);
        }
        break;
      case EventType::kServerSyn:
        if (server_syn < 0) {
          server_syn = ev.at;
        }
        break;
      case EventType::kRequestForwarded:
        if (forwarded < 0) {
          forwarded = ev.at;
        }
        break;
      case EventType::kEstablished:
        out.established = true;
        break;
      case EventType::kTakeoverClient:
      case EventType::kTakeoverServer:
        ++out.takeovers;
        break;
      case EventType::kReSwitch:
        ++out.reswitches;
        break;
      default:
        break;
    }
  }
  if (a_start >= 0 && a_done >= a_start) {
    out.storage_a_ms = sim::ToMillis(a_done - a_start);
  }
  if (b_start >= 0 && b_done >= b_start) {
    out.storage_b_ms = sim::ToMillis(b_done - b_start);
  }
  out.storage_ms = out.storage_a_ms + out.storage_b_ms;
  if (selected >= 0 && forwarded >= selected) {
    out.connection_ms = sim::ToMillis(forwarded - selected);
  }
  if (selected >= 0 && server_syn >= selected) {
    out.rule_scan_ms = sim::ToMillis(server_syn - selected);
  }
  return out;
}

BreakdownReport ReconstructBreakdown(const FlightRecorder& recorder) {
  BreakdownReport report;
  recorder.ForEachFlow([&report](const FlowId&, const std::vector<TraceEvent>& events) {
    ++report.flows_seen;
    const FlowBreakdown fb = AnalyzeFlow(events);
    report.takeovers += static_cast<std::uint64_t>(fb.takeovers);
    report.reswitches += static_cast<std::uint64_t>(fb.reswitches);
    if (!fb.established) {
      return;
    }
    ++report.flows_established;
    report.connection_ms.Add(fb.connection_ms);
    report.storage_ms.Add(fb.storage_ms);
    report.rule_scan_ms.Add(fb.rule_scan_ms);
  });
  return report;
}

std::vector<TakeoverRecord> TakeoverTimeline(const FlightRecorder& recorder) {
  std::vector<TakeoverRecord> out;
  recorder.ForEachFlow([&out](const FlowId& id, const std::vector<TraceEvent>& events) {
    for (const TraceEvent& ev : events) {
      if (ev.type == EventType::kTakeoverClient || ev.type == EventType::kTakeoverServer) {
        out.push_back(TakeoverRecord{id, ev});
      }
    }
  });
  std::stable_sort(out.begin(), out.end(),
                   [](const TakeoverRecord& a, const TakeoverRecord& b) {
                     return a.event.at < b.event.at;
                   });
  return out;
}

bool TimestampsMonotonic(const std::vector<TraceEvent>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].at < events[i - 1].at) {
      return false;
    }
  }
  return true;
}

}  // namespace obs
