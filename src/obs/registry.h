// Unified metrics registry (the "counters half" of the flight recorder).
//
// Every component registers named, label-keyed instruments — counters,
// gauges, histograms — against one Registry owned by the scenario/testbed,
// instead of hand-rolling private stat structs. Labels identify the entity
// the instrument describes (instance ip, vip, backend, mux id), so one
// registry holds the whole fleet's view and a single export call dumps a
// uniform snapshot.
//
// Instruments have stable addresses for the lifetime of the Registry:
// hot paths resolve a Counter* once and bump it per event with no string
// work. The simulator is single-threaded, so nothing here locks.
//
// Exporters:
//   ExportText      aligned text table, one instrument per row
//   ExportJsonLines one JSON object per line ("jsonl"), machine-readable

#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/metrics.h"

namespace sim {
class Simulator;
}

namespace obs {

// Label key/value pairs; canonicalized (sorted by key) when registered.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Dotted-quad helper so callers can label instruments by address without
// dragging in the net library.
std::string FormatIp(std::uint32_t ip);

// Monotonic event count.
class Counter {
 public:
  void Add(std::uint64_t n) { value_ += n; }
  void Inc() { ++value_; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Point-in-time value. Either set directly or backed by a provider callback
// evaluated at read time (event-loop gauges read the simulator live).
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    provider_ = nullptr;
  }
  void SetProvider(std::function<double()> provider) { provider_ = std::move(provider); }
  double value() const { return provider_ ? provider_() : value_; }

 private:
  double value_ = 0;
  std::function<double()> provider_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create. The returned reference stays valid for the Registry's
  // lifetime. Re-registering the same (name, labels) with a different
  // instrument kind is a programming error and asserts.
  Counter& GetCounter(const std::string& name, Labels labels = {});
  Gauge& GetGauge(const std::string& name, Labels labels = {});
  sim::Histogram& GetHistogram(const std::string& name, Labels labels = {});

  // A read-only view of one instrument for iteration/export.
  struct Row {
    const std::string* name = nullptr;
    const Labels* labels = nullptr;
    const Counter* counter = nullptr;    // Exactly one of these three
    const Gauge* gauge = nullptr;        // is non-null.
    const sim::Histogram* histogram = nullptr;
  };
  // Visits every instrument in deterministic (key-sorted) order.
  void ForEach(const std::function<void(const Row&)>& fn) const;
  std::size_t size() const { return entries_.size(); }

  void ExportText(std::ostream& os) const;
  void ExportJsonLines(std::ostream& os) const;
  std::string TextTable() const;
  std::string JsonLines() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    sim::Histogram histogram;
  };

  Entry& GetOrCreate(const std::string& name, Labels labels, Kind kind);

  // Canonical key -> entry; map keeps export order deterministic, and
  // unique_ptr keeps instrument addresses stable across rehash/rebalance.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

// Registers the simulator's event-loop gauges as live providers:
//   sim.events_executed        events run since simulator construction
//   sim.queue_depth_high_water max pending-event queue depth ever observed
void BindSimulatorGauges(Registry& registry, const sim::Simulator& simulator);

}  // namespace obs

#endif  // SRC_OBS_REGISTRY_H_
