#include "src/obs/registry.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

#include "src/sim/simulator.h"

namespace obs {
namespace {

// Canonical instrument key: name{k=v,k=v} with labels sorted by key.
std::string MakeKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) {
        key += ',';
      }
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string FormatIp(std::uint32_t ip) {
  return std::to_string((ip >> 24) & 0xff) + "." + std::to_string((ip >> 16) & 0xff) + "." +
         std::to_string((ip >> 8) & 0xff) + "." + std::to_string(ip & 0xff);
}

Registry::Entry& Registry::GetOrCreate(const std::string& name, Labels labels, Kind kind) {
  std::sort(labels.begin(), labels.end());
  const std::string key = MakeKey(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->labels = std::move(labels);
    entry->kind = kind;
    it = entries_.emplace(key, std::move(entry)).first;
  }
  assert(it->second->kind == kind && "instrument re-registered with a different kind");
  return *it->second;
}

Counter& Registry::GetCounter(const std::string& name, Labels labels) {
  return GetOrCreate(name, std::move(labels), Kind::kCounter).counter;
}

Gauge& Registry::GetGauge(const std::string& name, Labels labels) {
  return GetOrCreate(name, std::move(labels), Kind::kGauge).gauge;
}

sim::Histogram& Registry::GetHistogram(const std::string& name, Labels labels) {
  return GetOrCreate(name, std::move(labels), Kind::kHistogram).histogram;
}

void Registry::ForEach(const std::function<void(const Row&)>& fn) const {
  for (const auto& [key, entry] : entries_) {
    Row row;
    row.name = &entry->name;
    row.labels = &entry->labels;
    switch (entry->kind) {
      case Kind::kCounter:
        row.counter = &entry->counter;
        break;
      case Kind::kGauge:
        row.gauge = &entry->gauge;
        break;
      case Kind::kHistogram:
        row.histogram = &entry->histogram;
        break;
    }
    fn(row);
  }
}

void Registry::ExportText(std::ostream& os) const {
  // Pass 1: column width. Pass 2: rows.
  std::size_t width = 0;
  for (const auto& [key, entry] : entries_) {
    width = std::max(width, key.size());
  }
  for (const auto& [key, entry] : entries_) {
    os << key;
    for (std::size_t i = key.size(); i < width + 2; ++i) {
      os << ' ';
    }
    switch (entry->kind) {
      case Kind::kCounter:
        os << entry->counter.value();
        break;
      case Kind::kGauge:
        os << sim::FormatDouble(entry->gauge.value());
        break;
      case Kind::kHistogram: {
        const sim::Histogram& h = entry->histogram;
        os << "count=" << h.count();
        if (!h.empty()) {
          os << " mean=" << sim::FormatDouble(h.Mean())
             << " p50=" << sim::FormatDouble(h.Percentile(50))
             << " p99=" << sim::FormatDouble(h.Percentile(99))
             << " max=" << sim::FormatDouble(h.Max());
        }
        break;
      }
    }
    os << '\n';
  }
}

void Registry::ExportJsonLines(std::ostream& os) const {
  for (const auto& [key, entry] : entries_) {
    os << "{\"name\":\"" << JsonEscape(entry->name) << "\",\"labels\":{";
    for (std::size_t i = 0; i < entry->labels.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      os << '"' << JsonEscape(entry->labels[i].first) << "\":\""
         << JsonEscape(entry->labels[i].second) << '"';
    }
    os << "},";
    switch (entry->kind) {
      case Kind::kCounter:
        os << "\"kind\":\"counter\",\"value\":" << entry->counter.value();
        break;
      case Kind::kGauge:
        os << "\"kind\":\"gauge\",\"value\":" << sim::FormatDouble(entry->gauge.value(), 6);
        break;
      case Kind::kHistogram: {
        const sim::Histogram& h = entry->histogram;
        os << "\"kind\":\"histogram\",\"count\":" << h.count();
        if (!h.empty()) {
          os << ",\"mean\":" << sim::FormatDouble(h.Mean(), 6)
             << ",\"min\":" << sim::FormatDouble(h.Min(), 6)
             << ",\"p50\":" << sim::FormatDouble(h.Percentile(50), 6)
             << ",\"p90\":" << sim::FormatDouble(h.Percentile(90), 6)
             << ",\"p99\":" << sim::FormatDouble(h.Percentile(99), 6)
             << ",\"max\":" << sim::FormatDouble(h.Max(), 6);
        }
        break;
      }
    }
    os << "}\n";
  }
}

std::string Registry::TextTable() const {
  std::ostringstream os;
  ExportText(os);
  return os.str();
}

std::string Registry::JsonLines() const {
  std::ostringstream os;
  ExportJsonLines(os);
  return os.str();
}

void BindSimulatorGauges(Registry& registry, const sim::Simulator& simulator) {
  registry.GetGauge("sim.events_executed").SetProvider([&simulator]() {
    return static_cast<double>(simulator.executed_events());
  });
  registry.GetGauge("sim.queue_depth_high_water").SetProvider([&simulator]() {
    return static_cast<double>(simulator.queue_high_water());
  });
}

}  // namespace obs
