#include "src/l4lb/mux.h"

#include <algorithm>

#include "src/kv/hash_ring.h"

namespace l4lb {

net::IpAddr RendezvousPick(const net::FiveTuple& tuple, const std::vector<net::IpAddr>& pool) {
  net::IpAddr best = 0;
  std::uint64_t best_weight = 0;
  for (net::IpAddr candidate : pool) {
    std::uint64_t x = kv::Mix64((static_cast<std::uint64_t>(tuple.src) << 32) ^ tuple.dst);
    x = kv::Mix64(x ^ (static_cast<std::uint64_t>(tuple.sport) << 16) ^ tuple.dport);
    x = kv::Mix64(x ^ candidate);
    if (x > best_weight || best == 0) {
      best_weight = x;
      best = candidate;
    }
  }
  return best;
}

void Mux::SetPool(net::IpAddr vip, std::vector<net::IpAddr> instances) {
  pools_[vip] = std::move(instances);
}

void Mux::RemoveVip(net::IpAddr vip) { pools_.erase(vip); }

void Mux::RemoveInstance(net::IpAddr instance) {
  for (auto& [vip, pool] : pools_) {
    pool.erase(std::remove(pool.begin(), pool.end(), instance), pool.end());
  }
}

const std::vector<net::IpAddr>* Mux::PoolFor(net::IpAddr vip) const {
  auto it = pools_.find(vip);
  return it == pools_.end() ? nullptr : &it->second;
}

std::optional<net::IpAddr> Mux::Route(const net::Packet& packet,
                                      std::optional<net::IpAddr> snat_hit) {
  if (snat_hit) {
    ++stats_.forwarded_snat;
    return snat_hit;
  }
  const std::vector<net::IpAddr>* pool = PoolFor(packet.dst);
  if (pool == nullptr || pool->empty()) {
    ++stats_.dropped_no_pool;
    return std::nullopt;
  }
  ++stats_.forwarded_ecmp;
  return RendezvousPick(packet.tuple(), *pool);
}

}  // namespace l4lb
