#include "src/l4lb/mux.h"

#include <algorithm>

#include "src/kv/hash_ring.h"

namespace l4lb {

net::IpAddr RendezvousPick(const net::FiveTuple& tuple, const std::vector<net::IpAddr>& pool) {
  net::IpAddr best = 0;
  std::uint64_t best_weight = 0;
  for (net::IpAddr candidate : pool) {
    std::uint64_t x = kv::Mix64((static_cast<std::uint64_t>(tuple.src) << 32) ^ tuple.dst);
    x = kv::Mix64(x ^ (static_cast<std::uint64_t>(tuple.sport) << 16) ^ tuple.dport);
    x = kv::Mix64(x ^ candidate);
    if (x > best_weight || best == 0) {
      best_weight = x;
      best = candidate;
    }
  }
  return best;
}

bool Mux::StaleEpoch(net::IpAddr vip, std::uint64_t epoch) {
  if (epoch == 0) {
    return false;  // Unversioned writes always apply.
  }
  auto it = pool_epochs_.find(vip);
  if (it != pool_epochs_.end() && epoch < it->second) {
    return true;
  }
  pool_epochs_[vip] = epoch;
  return false;
}

bool Mux::StaleToken(std::uint64_t token) {
  if (token == 0) {
    return false;  // Unfenced writes always apply (single-controller mode).
  }
  if (token < fence_token_) {
    ++stats_.fenced_writes;
    return true;  // A deposed leader's write; the fleet has moved on.
  }
  fence_token_ = token;
  return false;
}

bool Mux::SetPool(net::IpAddr vip, std::vector<net::IpAddr> instances, std::uint64_t epoch,
                  std::uint64_t token) {
  // Token first: a fenced write must not advance the epoch watermark either.
  if (StaleToken(token) || StaleEpoch(vip, epoch)) {
    return false;
  }
  pools_[vip] = std::move(instances);
  return true;
}

bool Mux::AddMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch,
                    std::uint64_t token) {
  if (StaleToken(token) || StaleEpoch(vip, epoch)) {
    return false;
  }
  std::vector<net::IpAddr>& pool = pools_[vip];
  if (std::find(pool.begin(), pool.end(), instance) == pool.end()) {
    pool.push_back(instance);
  }
  return true;
}

bool Mux::RemoveMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch,
                       std::uint64_t token) {
  if (StaleToken(token) || StaleEpoch(vip, epoch)) {
    return false;
  }
  auto it = pools_.find(vip);
  if (it != pools_.end()) {
    it->second.erase(std::remove(it->second.begin(), it->second.end(), instance),
                     it->second.end());
  }
  return true;
}

bool Mux::SetStoreMode(net::IpAddr vip, bool stateless, std::uint64_t epoch,
                       std::uint64_t token) {
  if (StaleToken(token)) {
    return false;
  }
  auto it = store_modes_.find(vip);
  if (epoch != 0 && it != store_modes_.end() && epoch < it->second.second) {
    return false;  // A newer reconfiguration already set the mode.
  }
  store_modes_[vip] = {stateless, epoch};
  return true;
}

bool Mux::StatelessVip(net::IpAddr vip) const {
  auto it = store_modes_.find(vip);
  return it != store_modes_.end() && it->second.first;
}

std::uint64_t Mux::StoreModeEpoch(net::IpAddr vip) const {
  auto it = store_modes_.find(vip);
  return it == store_modes_.end() ? 0 : it->second.second;
}

std::uint64_t Mux::PoolEpoch(net::IpAddr vip) const {
  auto it = pool_epochs_.find(vip);
  return it == pool_epochs_.end() ? 0 : it->second;
}

void Mux::RemoveVip(net::IpAddr vip) {
  pools_.erase(vip);
  pool_epochs_.erase(vip);
  store_modes_.erase(vip);
}

void Mux::RemoveInstance(net::IpAddr instance) {
  for (auto& [vip, pool] : pools_) {
    pool.erase(std::remove(pool.begin(), pool.end(), instance), pool.end());
  }
}

const std::vector<net::IpAddr>* Mux::PoolFor(net::IpAddr vip) const {
  auto it = pools_.find(vip);
  return it == pools_.end() ? nullptr : &it->second;
}

std::optional<net::IpAddr> Mux::Route(const net::Packet& packet,
                                      std::optional<net::IpAddr> snat_hit) {
  if (snat_hit) {
    ++stats_.forwarded_snat;
    return snat_hit;
  }
  const std::vector<net::IpAddr>* pool = PoolFor(packet.dst);
  if (pool == nullptr || pool->empty()) {
    ++stats_.dropped_no_pool;
    return std::nullopt;
  }
  ++stats_.forwarded_ecmp;
  return RendezvousPick(packet.tuple(), *pool);
}

}  // namespace l4lb
