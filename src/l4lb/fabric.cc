#include "src/l4lb/fabric.h"

#include <utility>

#include "src/sim/sharded_sim.h"

namespace l4lb {

L4Fabric::L4Fabric(sim::Simulator* simulator, net::Network* network, int num_muxes)
    : sim_(simulator), net_(network) {
  for (int i = 0; i < num_muxes; ++i) {
    muxes_.push_back(std::make_unique<Mux>(i));
  }
}

void L4Fabric::BindShard(sim::ShardedSim* engine, int shard) {
  engine_ = engine;
  shard_ = shard;
}

void L4Fabric::OnShard(std::function<void()> fn) {
  if (engine_ != nullptr) {
    const int cur = sim::ShardedSim::current_shard();
    if (cur >= 0 && cur != shard_) {
      // An instance pipeline (SNAT pin) or an off-shard controller is
      // writing; the write executes on the fabric's shard at the next
      // barrier — bounded by the epoch window, i.e. at most one min-latency
      // link hop late, and always before any packet that could observe it
      // (a server->VIP return leg needs two DC hops).
      engine_->CallOn(shard_, std::move(fn));
      return;
    }
  }
  fn();
}

void L4Fabric::SetObservability(obs::Registry* registry, obs::FlightRecorder* recorder) {
  recorder_ = recorder;
  if (registry != nullptr) {
    packets_ctr_ = &registry->GetCounter("l4.fabric.packets");
    dropped_ctr_ = &registry->GetCounter("l4.fabric.dropped");
  }
}

void L4Fabric::AttachVip(net::IpAddr vip) { net_->Attach(vip, this); }

void L4Fabric::DetachVip(net::IpAddr vip) { net_->Detach(vip); }

void L4Fabric::SetVipPool(net::IpAddr vip, const std::vector<net::IpAddr>& instances) {
  OnShard([this, vip, instances]() {
    for (auto& mux : muxes_) {
      mux->SetPool(vip, instances);
    }
  });
}

void L4Fabric::SetVipPoolStaggered(net::IpAddr vip, std::vector<net::IpAddr> instances,
                                   sim::Duration per_mux_delay) {
  OnShard([this, vip, instances = std::move(instances), per_mux_delay]() {
    for (std::size_t i = 0; i < muxes_.size(); ++i) {
      Mux* mux = muxes_[i].get();
      sim_->After(per_mux_delay * static_cast<sim::Duration>(i),
                  [mux, vip, instances]() { mux->SetPool(vip, instances); });
    }
  });
}

void L4Fabric::NoteFenced(net::IpAddr vip, std::uint64_t token, const Mux& mux) {
  // Distinguish a fencing rejection from a plain stale-epoch skip: only the
  // former leaves the offered token below the mux's watermark.
  if (recorder_ == nullptr || token == 0 || token >= mux.FenceToken()) {
    return;
  }
  recorder_->RecordSystem(sim_->now(), obs::EventType::kFencedWrite, vip,
                          (token << 32) | (mux.FenceToken() & 0xffffffffULL));
}

void L4Fabric::ProgramPool(net::IpAddr vip, std::vector<net::IpAddr> instances,
                           std::uint64_t epoch, sim::Duration per_mux_delay,
                           std::uint64_t token) {
  OnShard([this, vip, instances = std::move(instances), epoch, per_mux_delay, token]() {
    for (std::size_t i = 0; i < muxes_.size(); ++i) {
      Mux* mux = muxes_[i].get();
      if (per_mux_delay == 0) {
        if (!mux->SetPool(vip, instances, epoch, token)) {
          NoteFenced(vip, token, *mux);
        }
        continue;
      }
      sim_->After(per_mux_delay * static_cast<sim::Duration>(i),
                  [this, mux, vip, instances, epoch, token]() {
                    if (!mux->SetPool(vip, instances, epoch, token)) {
                      NoteFenced(vip, token, *mux);
                    }
                  });
    }
  });
}

void L4Fabric::AddPoolMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch,
                             sim::Duration per_mux_delay, std::uint64_t token) {
  OnShard([this, vip, instance, epoch, per_mux_delay, token]() {
    for (std::size_t i = 0; i < muxes_.size(); ++i) {
      Mux* mux = muxes_[i].get();
      if (per_mux_delay == 0) {
        if (!mux->AddMember(vip, instance, epoch, token)) {
          NoteFenced(vip, token, *mux);
        }
        continue;
      }
      sim_->After(per_mux_delay * static_cast<sim::Duration>(i),
                  [this, mux, vip, instance, epoch, token]() {
                    if (!mux->AddMember(vip, instance, epoch, token)) {
                      NoteFenced(vip, token, *mux);
                    }
                  });
    }
  });
}

void L4Fabric::RemovePoolMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch,
                                sim::Duration per_mux_delay, std::uint64_t token) {
  OnShard([this, vip, instance, epoch, per_mux_delay, token]() {
    for (std::size_t i = 0; i < muxes_.size(); ++i) {
      Mux* mux = muxes_[i].get();
      if (per_mux_delay == 0) {
        if (!mux->RemoveMember(vip, instance, epoch, token)) {
          NoteFenced(vip, token, *mux);
        }
        continue;
      }
      sim_->After(per_mux_delay * static_cast<sim::Duration>(i),
                  [this, mux, vip, instance, epoch, token]() {
                    if (!mux->RemoveMember(vip, instance, epoch, token)) {
                      NoteFenced(vip, token, *mux);
                    }
                  });
    }
  });
}

void L4Fabric::SetStoreMode(net::IpAddr vip, bool stateless, std::uint64_t epoch,
                            sim::Duration per_mux_delay, std::uint64_t token) {
  OnShard([this, vip, stateless, epoch, per_mux_delay, token]() {
    for (std::size_t i = 0; i < muxes_.size(); ++i) {
      Mux* mux = muxes_[i].get();
      if (per_mux_delay == 0) {
        if (!mux->SetStoreMode(vip, stateless, epoch, token)) {
          NoteFenced(vip, token, *mux);
        }
        continue;
      }
      sim_->After(per_mux_delay * static_cast<sim::Duration>(i),
                  [this, mux, vip, stateless, epoch, token]() {
                    if (!mux->SetStoreMode(vip, stateless, epoch, token)) {
                      NoteFenced(vip, token, *mux);
                    }
                  });
    }
  });
}

void L4Fabric::RemoveInstanceEverywhere(net::IpAddr instance) {
  OnShard([this, instance]() {
    for (auto& mux : muxes_) {
      mux->RemoveInstance(instance);
    }
    // Drop SNAT pins owned by the dead instance so server-side return
    // traffic re-ECMPs to a survivor instead of blackholing.
    for (auto it = snat_.begin(); it != snat_.end();) {
      if (it->second == instance) {
        it = snat_.erase(it);
      } else {
        ++it;
      }
    }
  });
}

void L4Fabric::RegisterSnat(const net::FiveTuple& server_side, net::IpAddr owner) {
  OnShard([this, server_side, owner]() { snat_[server_side] = owner; });
}

void L4Fabric::UnregisterSnat(const net::FiveTuple& server_side) {
  OnShard([this, server_side]() { snat_.erase(server_side); });
}

std::optional<net::IpAddr> L4Fabric::SnatOwner(const net::FiveTuple& server_side) const {
  auto it = snat_.find(server_side);
  if (it == snat_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void L4Fabric::HandlePacket(const net::Packet& packet) {
  ++stats_.packets;
  if (packets_ctr_ != nullptr) {
    packets_ctr_->Inc();
  }
  if (muxes_.empty()) {
    ++stats_.dropped;
    if (dropped_ctr_ != nullptr) {
      dropped_ctr_->Inc();
    }
    return;
  }
  // Router-level ECMP across muxes.
  const std::size_t mux_idx =
      net::FiveTupleHash{}(packet.tuple()) % muxes_.size();
  std::optional<net::IpAddr> snat_hit =
      snat_enabled_ ? SnatOwner(packet.tuple()) : std::nullopt;
  // A SNAT pin to an instance the network knows is unreachable is useless;
  // the failure path normally clears pins, but guard against races.
  if (snat_hit && net_->IsDown(*snat_hit)) {
    snat_hit = std::nullopt;
  }
  auto target = muxes_[mux_idx]->Route(packet, snat_hit);
  if (!target) {
    ++stats_.dropped;
    if (dropped_ctr_ != nullptr) {
      dropped_ctr_->Inc();
    }
    return;
  }
  // Trace where the fabric sent each flow's opening SYN: the first hop of
  // the flow's timeline, before any instance has seen it.
  if (recorder_ != nullptr && packet.syn() && !packet.ack_flag()) {
    recorder_->Record(
        obs::FlowId{packet.dst, packet.dport, packet.src, packet.sport}, sim_->now(),
        obs::EventType::kMuxForward, static_cast<std::uint32_t>(mux_idx), *target);
  }
  net::Packet fwd = packet;
  fwd.encap_dst = *target;
  net_->Send(std::move(fwd));
}

}  // namespace l4lb
