// L4Fabric: the cloud's L4 load-balancer service as seen by tenants.
//
// It attaches to the network at each VIP, spreads packets across several Mux
// instances (router ECMP), and owns the shared SNAT table. Controller-driven
// mapping changes can be applied atomically (tests) or staggered across muxes
// (paper §4.5: "the VIP-to-YODA-instance mapping has to be changed on
// multiple L4 LB instances, which is not atomic"), which is what creates the
// transient mixed-traffic window the assignment ILP budgets for.

#ifndef SRC_L4LB_FABRIC_H_
#define SRC_L4LB_FABRIC_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/l4lb/mux.h"
#include "src/net/network.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace sim {
class ShardedSim;
}

namespace l4lb {

struct FabricStats {
  std::uint64_t packets = 0;
  std::uint64_t dropped = 0;
};

class L4Fabric : public net::Node {
 public:
  L4Fabric(sim::Simulator* simulator, net::Network* network, int num_muxes);

  // Intra-cell sharding: places this fabric (one Node, all muxes and the
  // SNAT table) on `shard` of `engine`. The construction simulator must be
  // that shard's. Mutating calls — controller pool writes, SNAT pins —
  // arriving from an event on a *different* shard are re-routed to execute
  // on the owning shard at the next epoch barrier (fire-and-forget; all
  // routed writes are void). Unbound, everything runs inline, unchanged.
  void BindShard(sim::ShardedSim* engine, int shard);
  int shard() const { return shard_; }

  // Route the VIP through this fabric (attaches this node at `vip`).
  void AttachVip(net::IpAddr vip);
  void DetachVip(net::IpAddr vip);

  // --- controller API ---
  // Applies the pool on all muxes at once.
  void SetVipPool(net::IpAddr vip, const std::vector<net::IpAddr>& instances);
  // Applies the pool one mux at a time, `per_mux_delay` apart (non-atomic
  // update; during the window different muxes route differently).
  void SetVipPoolStaggered(net::IpAddr vip, std::vector<net::IpAddr> instances,
                           sim::Duration per_mux_delay);
  // Failure path: removes the instance from every pool on every mux and
  // clears its SNAT pins, so subsequent packets re-ECMP over survivors.
  void RemoveInstanceEverywhere(net::IpAddr instance);

  // --- epoched controller API (reconciliation rollout) ---
  // Every write carries the ControlState epoch that produced it; muxes drop
  // writes from epochs older than the newest they have applied per VIP (see
  // Mux::SetPool), which is what makes in-flight staggered rollouts safe to
  // overtake. `per_mux_delay` staggers application across muxes (0 = all at
  // once); a member write on mux i lands at i * per_mux_delay.
  //
  // `token` is the leader lease's fencing token (0 = unfenced). Muxes reject
  // writes whose token is older than the highest they have seen; each
  // rejection is recorded as a kFencedWrite system event (where=vip,
  // detail=(offered token << 32) | mux watermark) so traces prove a deposed
  // leader's stragglers were dropped.
  void ProgramPool(net::IpAddr vip, std::vector<net::IpAddr> instances, std::uint64_t epoch,
                   sim::Duration per_mux_delay = 0, std::uint64_t token = 0);
  void AddPoolMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch,
                     sim::Duration per_mux_delay = 0, std::uint64_t token = 0);
  void RemovePoolMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch,
                        sim::Duration per_mux_delay = 0, std::uint64_t token = 0);
  // Marks the VIP's store mode on every mux (see Mux::SetStoreMode); the
  // make-before-break rollout issues this only after the instance fleet has
  // converged on the new mode.
  void SetStoreMode(net::IpAddr vip, bool stateless, std::uint64_t epoch,
                    sim::Duration per_mux_delay = 0, std::uint64_t token = 0);
  // How long after issuing a staggered write the last mux has applied it.
  sim::Duration ConvergenceDelay(sim::Duration per_mux_delay) const {
    return muxes_.empty() ? 0
                          : per_mux_delay * static_cast<sim::Duration>(muxes_.size() - 1);
  }

  // --- SNAT API (used by L7 instances opening VIP-sourced connections) ---
  // `server_side` is the tuple of *return* packets: (server -> VIP).
  void RegisterSnat(const net::FiveTuple& server_side, net::IpAddr owner);
  void UnregisterSnat(const net::FiveTuple& server_side);
  std::optional<net::IpAddr> SnatOwner(const net::FiveTuple& server_side) const;
  // Ablation hook: with pinning disabled, server->VIP return traffic is
  // routed purely by ECMP, forcing non-owner instances to consult TCPStore.
  void set_snat_enabled(bool enabled) { snat_enabled_ = enabled; }

  // net::Node: a packet addressed to a VIP.
  void HandlePacket(const net::Packet& packet) override;

  // Hooks the fabric into the observability layer: fabric/mux counters
  // mirror into "l4.*" instruments, and every routed client SYN records a
  // kMuxForward trace event (where = mux id, detail = target instance).
  void SetObservability(obs::Registry* registry, obs::FlightRecorder* recorder);

  const FabricStats& stats() const { return stats_; }
  Mux& mux(int i) { return *muxes_[static_cast<std::size_t>(i)]; }
  int mux_count() const { return static_cast<int>(muxes_.size()); }

 private:
  // Records kFencedWrite when a rejected write was a fencing (not epoch)
  // rejection: the offered token sits below the mux's watermark.
  void NoteFenced(net::IpAddr vip, std::uint64_t token, const Mux& mux);
  // Runs `fn` on the owning shard: inline when unbound, idle, or already
  // executing there; otherwise cross-shard CallOn (lands at the barrier).
  void OnShard(std::function<void()> fn);

  sim::ShardedSim* engine_ = nullptr;
  int shard_ = 0;
  sim::Simulator* sim_;
  net::Network* net_;
  std::vector<std::unique_ptr<Mux>> muxes_;
  bool snat_enabled_ = true;
  std::unordered_map<net::FiveTuple, net::IpAddr, net::FiveTupleHash> snat_;
  FabricStats stats_;
  obs::Counter* packets_ctr_ = nullptr;
  obs::Counter* dropped_ctr_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace l4lb

#endif  // SRC_L4LB_FABRIC_H_
