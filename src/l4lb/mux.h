// Software mux of the cloud L4 LB (Ananta-style), one of several identical
// instances. A mux holds the VIP -> {L7 instance} mapping installed by the
// Yoda controller and forwards VIP traffic by rendezvous (highest-random-
// weight) hashing of the 5-tuple over the live pool, so removing an instance
// only remaps the flows that instance was handling.
//
// Forwarding preserves the original packet (dst stays the VIP) and sets the
// IP-in-IP encapsulation destination, matching how Ananta/Duet deliver VIP
// traffic to a DIP.
//
// The SNAT half (paper §3: Yoda uses "the SNAT functionality of the L4 LB")
// pins server->VIP return traffic to the instance that opened the VIP-sourced
// connection; when that instance dies the pin is dropped and return traffic
// re-ECMPs over the survivors — which is what lets any Yoda instance take
// over via TCPStore.

#ifndef SRC_L4LB_MUX_H_
#define SRC_L4LB_MUX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/net/network.h"
#include "src/net/packet.h"

namespace l4lb {

struct MuxStats {
  std::uint64_t forwarded_ecmp = 0;
  std::uint64_t forwarded_snat = 0;
  std::uint64_t dropped_no_pool = 0;
  std::uint64_t fenced_writes = 0;  // Control writes rejected: stale lease token.
};

class Mux {
 public:
  explicit Mux(int id) : id_(id) {}

  int id() const { return id_; }

  // Installs/overwrites the instance pool for a VIP on this mux.
  //
  // Epoch semantics (controller make-before-break rollout): every pool write
  // carries the ControlState epoch that produced it. A mux remembers the
  // newest epoch applied per VIP and IGNORES writes from older epochs, so a
  // staggered update still in flight when a newer reconfiguration (e.g. a
  // failure repair) lands cannot clobber it. Epoch 0 is the unversioned
  // escape hatch (applies unconditionally; legacy callers and tests).
  // Returns false when the write was rejected as stale.
  //
  // Fencing-token semantics (controller HA): `token` is the leader lease's
  // monotonically increasing fencing token. A mux remembers the highest token
  // it has ever seen and rejects writes carrying an OLDER one — a deposed
  // leader replaying a plan after a new leader took over cannot corrupt the
  // pools, no matter what epoch its plan carries. Token 0 is the unfenced
  // escape hatch (single-controller mode; applies unconditionally).
  bool SetPool(net::IpAddr vip, std::vector<net::IpAddr> instances, std::uint64_t epoch = 0,
               std::uint64_t token = 0);
  // Idempotent member-level writes (the rollout's add/remove steps). Adding
  // a member that is already pooled, or removing one that is not, is a no-op
  // (returns true: the desired state holds). Stale epochs/tokens return false.
  bool AddMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch = 0,
                 std::uint64_t token = 0);
  bool RemoveMember(net::IpAddr vip, net::IpAddr instance, std::uint64_t epoch = 0,
                    std::uint64_t token = 0);
  // Marks the VIP as serving the stateless fast path (flows carry signed
  // cookies, so a re-steered packet can be adopted by any pool member
  // without a store round-trip). Token gating matches pool writes; the
  // epoch watermark is tracked separately from pool epochs so a mode flip
  // and a pool update from the same reconfiguration cannot shadow each
  // other. The controller installs this AFTER the instances converge
  // (make-before-break).
  bool SetStoreMode(net::IpAddr vip, bool stateless, std::uint64_t epoch = 0,
                    std::uint64_t token = 0);
  bool StatelessVip(net::IpAddr vip) const;
  // Newest epoch that configured the VIP's store mode (0 = never set).
  std::uint64_t StoreModeEpoch(net::IpAddr vip) const;
  void RemoveVip(net::IpAddr vip);
  // Removes one instance from every pool (failure handling).
  void RemoveInstance(net::IpAddr instance);
  // Newest epoch applied to this VIP's pool (0 = only unversioned writes).
  std::uint64_t PoolEpoch(net::IpAddr vip) const;
  // Highest fencing token ever seen (0 = only unfenced writes).
  std::uint64_t FenceToken() const { return fence_token_; }

  const std::vector<net::IpAddr>* PoolFor(net::IpAddr vip) const;

  // Picks the forwarding target for `packet`, or nullopt to drop. `snat_hit`
  // is the pre-resolved SNAT owner, if any (shared table lives in L4Fabric).
  std::optional<net::IpAddr> Route(const net::Packet& packet,
                                   std::optional<net::IpAddr> snat_hit);

  const MuxStats& stats() const { return stats_; }

 private:
  bool StaleEpoch(net::IpAddr vip, std::uint64_t epoch);
  bool StaleToken(std::uint64_t token);

  int id_;
  std::unordered_map<net::IpAddr, std::vector<net::IpAddr>> pools_;
  std::unordered_map<net::IpAddr, std::uint64_t> pool_epochs_;
  // VIP -> {stateless?, install epoch}.
  std::unordered_map<net::IpAddr, std::pair<bool, std::uint64_t>> store_modes_;
  std::uint64_t fence_token_ = 0;
  MuxStats stats_;
};

// Rendezvous hash: returns the pool member with the highest hash weight for
// this tuple; stable under removals of other members.
net::IpAddr RendezvousPick(const net::FiveTuple& tuple, const std::vector<net::IpAddr>& pool);

}  // namespace l4lb

#endif  // SRC_L4LB_MUX_H_
