#include "src/rules/rule_table.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace rules {

std::optional<Backend> StickyTable::Find(const std::string& cookie_value) const {
  auto it = bindings_.find(cookie_value);
  if (it == bindings_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void StickyTable::Bind(const std::string& cookie_value, const Backend& backend) {
  bindings_[cookie_value] = backend;
}

void RuleTable::Add(Rule rule) {
  // Stable insertion point: after all rules with priority >= rule.priority.
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&rule](const Rule& r) { return r.priority < rule.priority; });
  rules_.insert(it, std::move(rule));
}

int RuleTable::Remove(const std::string& name) {
  auto it = std::remove_if(rules_.begin(), rules_.end(),
                           [&name](const Rule& r) { return r.name == name; });
  int removed = static_cast<int>(rules_.end() - it);
  rules_.erase(it, rules_.end());
  return removed;
}

void RuleTable::ReplaceAll(std::vector<Rule> new_rules) {
  rules_.clear();
  for (Rule& r : new_rules) {
    Add(std::move(r));
  }
}

std::optional<Backend> RuleTable::Apply(const Rule& rule, const http::Request& req,
                                        const SelectionContext& ctx) const {
  // Hoist the null test: with no health oracle installed (the common
  // bench_fig06 shape) the per-backend check is a pointer compare, not a
  // std::function empty-test plus indirect call.
  const auto* oracle = ctx.is_healthy ? &ctx.is_healthy : nullptr;
  auto healthy = [oracle](const Backend& b) { return oracle == nullptr || (*oracle)(b); };

  switch (rule.action.type) {
    case ActionType::kWeightedSplit: {
      std::vector<const Backend*> alive;
      std::vector<double> weights;
      for (const Backend& b : rule.action.backends) {
        if (healthy(b) && b.weight > 0) {
          alive.push_back(&b);
          weights.push_back(b.weight);
        }
      }
      if (alive.empty()) {
        return std::nullopt;
      }
      assert(ctx.rng != nullptr && "weighted split requires an Rng");
      return *alive[ctx.rng->WeightedIndex(weights)];
    }

    case ActionType::kStickyTable: {
      if (ctx.sticky == nullptr) {
        return std::nullopt;
      }
      auto cookies = req.Cookies();
      auto it = cookies.find(rule.action.sticky_cookie);
      if (it == cookies.end()) {
        return std::nullopt;
      }
      auto bound = ctx.sticky->Find(it->second);
      if (bound && healthy(*bound)) {
        return bound;
      }
      return std::nullopt;  // Unbound session: fall through to lower priority.
    }

    case ActionType::kMirror: {
      // Handled in Select (needs to fill Selection::mirrors); Apply only
      // reports the primary.
      for (const Backend& b : rule.action.backends) {
        if (healthy(b)) {
          return b;
        }
      }
      return std::nullopt;
    }

    case ActionType::kLeastLoaded: {
      const Backend* best = nullptr;
      int best_load = std::numeric_limits<int>::max();
      for (const Backend& b : rule.action.backends) {
        if (!healthy(b)) {
          continue;
        }
        int load = ctx.load_of ? ctx.load_of(b) : 0;
        if (load < best_load) {
          best_load = load;
          best = &b;
        }
      }
      if (best == nullptr) {
        return std::nullopt;
      }
      return *best;
    }
  }
  return std::nullopt;
}

std::optional<Selection> RuleTable::Select(const http::Request& req,
                                           const SelectionContext& ctx) const {
  int scanned = 0;
  for (const Rule& rule : rules_) {
    ++scanned;
    if (!rule.match.Matches(req)) {
      continue;
    }
    auto backend = Apply(rule, req, ctx);
    if (!backend) {
      continue;  // Action could not produce a healthy backend; keep scanning.
    }
    Selection sel{*backend, rule.name, scanned, {}};
    if (rule.action.type == ActionType::kMirror) {
      const auto* oracle = ctx.is_healthy ? &ctx.is_healthy : nullptr;
      auto healthy = [oracle](const Backend& b) { return oracle == nullptr || (*oracle)(b); };
      for (const Backend& b : rule.action.backends) {
        if (healthy(b) && !(b == *backend)) {
          sel.mirrors.push_back(b);
        }
      }
    }
    return sel;
  }
  return std::nullopt;
}

}  // namespace rules
