#include "src/rules/rule.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

#include "src/sim/metrics.h"

namespace rules {
namespace {

void Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    out.push_back(item);
  }
  return out;
}

// Parses "a.b.c.d" or "a.b.c.d:weight".
std::optional<Backend> ParseBackend(const std::string& s, std::string* error) {
  Backend b;
  std::string ip_part = s;
  std::size_t colon = s.find(':');
  if (colon != std::string::npos) {
    ip_part = s.substr(0, colon);
    const std::string w = s.substr(colon + 1);
    char* end = nullptr;
    b.weight = std::strtod(w.c_str(), &end);
    if (end != w.c_str() + w.size()) {
      Fail(error, "bad backend weight: " + s);
      return std::nullopt;
    }
  }
  auto quads = Split(ip_part, '.');
  if (quads.size() != 4) {
    Fail(error, "bad backend ip: " + s);
    return std::nullopt;
  }
  std::uint32_t ip = 0;
  for (const auto& q : quads) {
    unsigned v = 0;
    auto [p, ec] = std::from_chars(q.data(), q.data() + q.size(), v);
    if (ec != std::errc() || p != q.data() + q.size() || v > 255) {
      Fail(error, "bad backend ip: " + s);
      return std::nullopt;
    }
    ip = (ip << 8) | v;
  }
  b.ip = ip;
  return b;
}

}  // namespace

std::string Backend::ToString() const {
  return net::IpToString(ip) + ":" + std::to_string(port) + "(w=" +
         sim::FormatDouble(weight, 2) + ")";
}

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative glob with backtracking to the last '*'.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

bool Match::Matches(const http::Request& req) const {
  if (url_glob && !GlobMatch(*url_glob, req.url)) {
    return false;
  }
  if (host_glob) {
    auto host = req.Header("host");
    if (!host || !GlobMatch(*host_glob, *host)) {
      return false;
    }
  }
  if (method && *method != req.method) {
    return false;
  }
  if (cookie_name) {
    auto cookies = req.Cookies();
    auto it = cookies.find(*cookie_name);
    if (it == cookies.end()) {
      return false;
    }
    if (cookie_value_glob && !GlobMatch(*cookie_value_glob, it->second)) {
      return false;
    }
  }
  if (header_name) {
    auto v = req.Header(*header_name);
    if (!v) {
      return false;
    }
    if (header_value_glob && !GlobMatch(*header_value_glob, *v)) {
      return false;
    }
  }
  return true;
}

std::string Match::ToString() const {
  std::string out;
  auto add = [&out](const std::string& k, const std::optional<std::string>& v) {
    if (v) {
      if (!out.empty()) {
        out += " ";
      }
      out += k + "=" + *v;
    }
  };
  add("url", url_glob);
  add("host", host_glob);
  add("method", method);
  add("cookie", cookie_name);
  add("cookie-value", cookie_value_glob);
  add("header", header_name);
  add("header-value", header_value_glob);
  return out.empty() ? "<any>" : out;
}

std::string Action::ToString() const {
  std::string out;
  switch (type) {
    case ActionType::kWeightedSplit:
      out = "split={";
      break;
    case ActionType::kStickyTable:
      out = "table{" + sticky_cookie + "}={";
      break;
    case ActionType::kLeastLoaded:
      out = "least={";
      break;
    case ActionType::kMirror:
      out = "mirror={";
      break;
  }
  for (std::size_t i = 0; i < backends.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += backends[i].ToString();
  }
  return out + "}";
}

std::string Rule::ToString() const {
  return name + " prio=" + std::to_string(priority) + " match(" + match.ToString() + ") " +
         action.ToString();
}

std::optional<Rule> ParseRule(const std::string& spec, std::string* error) {
  Rule rule;
  bool have_action = false;
  for (const std::string& tok : Split(spec, ' ')) {
    if (tok.empty()) {
      continue;
    }
    std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      Fail(error, "token missing '=': " + tok);
      return std::nullopt;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "name") {
      rule.name = value;
    } else if (key == "priority") {
      int prio = 0;
      auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), prio);
      if (ec != std::errc() || p != value.data() + value.size()) {
        Fail(error, "bad priority: " + value);
        return std::nullopt;
      }
      rule.priority = prio;
    } else if (key == "url") {
      rule.match.url_glob = value;
    } else if (key == "host") {
      rule.match.host_glob = value;
    } else if (key == "method") {
      rule.match.method = value;
    } else if (key == "cookie") {
      rule.match.cookie_name = value;
    } else if (key == "cookie-value") {
      rule.match.cookie_value_glob = value;
    } else if (key == "header") {
      rule.match.header_name = value;
    } else if (key == "header-value") {
      rule.match.header_value_glob = value;
    } else if (key == "split" || key == "least" || key == "mirror") {
      rule.action.type = key == "split"    ? ActionType::kWeightedSplit
                         : key == "least" ? ActionType::kLeastLoaded
                                          : ActionType::kMirror;
      for (const std::string& be : Split(value, ',')) {
        // In split form the last ':' separates the weight: "1.2.3.4:0.5".
        auto backend = ParseBackend(be, error);
        if (!backend) {
          return std::nullopt;
        }
        if (rule.action.type != ActionType::kWeightedSplit) {
          backend->weight = 1.0;
        }
        rule.action.backends.push_back(*backend);
      }
      have_action = true;
    } else if (key == "table") {
      rule.action.type = ActionType::kStickyTable;
      rule.action.sticky_cookie = value;
      have_action = true;
    } else {
      Fail(error, "unknown key: " + key);
      return std::nullopt;
    }
  }
  if (rule.name.empty()) {
    Fail(error, "rule needs a name");
    return std::nullopt;
  }
  if (!have_action) {
    Fail(error, "rule needs an action (split=/least=/table=)");
    return std::nullopt;
  }
  return rule;
}

}  // namespace rules
