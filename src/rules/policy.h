// Operator-facing policy interface (paper §5.1, Table 3).
//
// Online-service operators express *policies*; the Yoda controller compiles
// them into prioritized rules. The priority field is what lets one match
// condition express primary-backup pairs without rule blow-up.

#ifndef SRC_RULES_POLICY_H_
#define SRC_RULES_POLICY_H_

#include <string>
#include <vector>

#include "src/rules/rule.h"

namespace rules {

// "split traffic matching `match` across `backends` by weight" (rule 1).
struct WeightedSplitPolicy {
  std::string name;
  int priority = 1;
  Match match;
  std::vector<Backend> backends;
};

// "prefer primaries; if all fail, use backups" (rules 2+3): compiles into two
// rules with the same match at adjacent priorities.
struct PrimaryBackupPolicy {
  std::string name;
  int priority = 2;  // Primary rule priority; backup gets priority-1.
  Match match;
  std::vector<Backend> primaries;
  std::vector<Backend> backups;
};

// "requests carrying cookie `cookie` stick to their bound server, new
// sessions fall through to `fallback` backends" (rule 4).
struct StickySessionPolicy {
  std::string name;
  int priority = 0;
  Match match;
  std::string cookie;
  std::vector<Backend> fallback;
};

// "always pick the least-loaded backend" (weights set to -1 in the paper's
// interface; expressed directly here).
struct LeastLoadedPolicy {
  std::string name;
  int priority = 1;
  Match match;
  std::vector<Backend> backends;
};

std::vector<Rule> Compile(const WeightedSplitPolicy& p);
std::vector<Rule> Compile(const PrimaryBackupPolicy& p);
std::vector<Rule> Compile(const StickySessionPolicy& p);
std::vector<Rule> Compile(const LeastLoadedPolicy& p);

}  // namespace rules

#endif  // SRC_RULES_POLICY_H_
