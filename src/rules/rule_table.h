// RuleTable: the HAProxy-style classifier with Yoda's priority extension.
//
// Selection scans rules linearly in decreasing priority order and applies the
// first matching rule whose action can produce a *healthy* backend; if it
// cannot (e.g. all primaries are down), the scan continues — this is how one
// match condition at two priorities implements primary-backup (§5.1).
//
// The table reports how many rules each selection scanned so callers can
// model lookup latency as a function of table size (Fig 6).

#ifndef SRC_RULES_RULE_TABLE_H_
#define SRC_RULES_RULE_TABLE_H_

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/rules/rule.h"
#include "src/sim/random.h"

namespace rules {

// Session affinity storage for kStickyTable actions: cookie value -> backend.
// Lookup order is never observable (each cookie is independent), so a hash
// map is safe for determinism and O(1) on the per-request path; the table is
// pre-reserved so early Binds don't rehash mid-experiment.
class StickyTable {
 public:
  StickyTable() { bindings_.reserve(kInitialCapacity); }

  std::optional<Backend> Find(const std::string& cookie_value) const;
  void Bind(const std::string& cookie_value, const Backend& backend);
  void Clear() { bindings_.clear(); }
  std::size_t size() const { return bindings_.size(); }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;
  std::unordered_map<std::string, Backend> bindings_;
};

// Everything a selection may consult besides the request itself.
struct SelectionContext {
  sim::Rng* rng = nullptr;  // Required for kWeightedSplit.
  // Health oracle; nullptr means "all healthy".
  std::function<bool(const Backend&)> is_healthy;
  // Active connection counts for kLeastLoaded; nullptr means "all zero".
  std::function<int(const Backend&)> load_of;
  StickyTable* sticky = nullptr;
};

struct Selection {
  Backend backend;
  std::string rule_name;
  int rules_scanned = 0;
  // kMirror: additional backends that receive a copy of the request; the
  // first responder (primary or mirror) serves the client.
  std::vector<Backend> mirrors;
};

class RuleTable {
 public:
  // Inserts a rule keeping the table ordered by decreasing priority
  // (stable for equal priorities: earlier-added rules are scanned first).
  void Add(Rule rule);
  // Removes all rules with the given name; returns how many were removed.
  int Remove(const std::string& name);
  void Clear() { rules_.clear(); }
  void ReplaceAll(std::vector<Rule> new_rules);

  std::size_t size() const { return rules_.size(); }
  const std::vector<Rule>& rules() const { return rules_; }

  // Scans for the first applicable rule and picks a backend per its action.
  // Returns nullopt when no rule matches or no healthy backend exists.
  std::optional<Selection> Select(const http::Request& req, const SelectionContext& ctx) const;

 private:
  std::optional<Backend> Apply(const Rule& rule, const http::Request& req,
                               const SelectionContext& ctx) const;

  std::vector<Rule> rules_;  // Sorted by decreasing priority.
};

}  // namespace rules

#endif  // SRC_RULES_RULE_TABLE_H_
