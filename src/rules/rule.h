// L7 rule model (paper §4.4/§5.1): OpenFlow-like rules with match, action and
// priority. Rules are scanned linearly in decreasing priority order, exactly
// like HAProxy's chained table with Yoda's priority extension.

#ifndef SRC_RULES_RULE_H_
#define SRC_RULES_RULE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/http/message.h"
#include "src/net/packet.h"

namespace rules {

struct Backend {
  net::IpAddr ip = 0;
  net::Port port = 80;
  double weight = 1.0;

  bool operator==(const Backend& o) const { return ip == o.ip && port == o.port; }
  std::string ToString() const;
};

// Glob matcher supporting '*' (any run) and '?' (any one char).
bool GlobMatch(const std::string& pattern, const std::string& text);

// Conjunctive match over the HTTP request fields the paper's policies use.
struct Match {
  std::optional<std::string> url_glob;
  std::optional<std::string> host_glob;
  std::optional<std::string> method;
  std::optional<std::string> cookie_name;        // Cookie must be present...
  std::optional<std::string> cookie_value_glob;  // ...and optionally match.
  std::optional<std::string> header_name;        // Arbitrary header...
  std::optional<std::string> header_value_glob;  // ...with value glob.

  bool Matches(const http::Request& req) const;
  std::string ToString() const;
};

enum class ActionType {
  kWeightedSplit,  // Pick among backends proportionally to weight.
  kStickyTable,    // Map a cookie value to a stable backend.
  kLeastLoaded,    // Pick the backend with the fewest active connections.
  kMirror,         // Send the request to ALL backends; first response wins.
};

struct Action {
  ActionType type = ActionType::kWeightedSplit;
  std::vector<Backend> backends;
  std::string sticky_cookie;  // Cookie key for kStickyTable.

  std::string ToString() const;
};

struct Rule {
  std::string name;
  int priority = 0;
  Match match;
  Action action;

  std::string ToString() const;
};

// Parses the compact textual rule form used by tests/examples, e.g.
//   "name=r-jpg2 priority=3 url=*.jpg split=10.0.2.1:0.5,10.0.3.1:0.5"
//   "name=r-cookie priority=0 cookie=session table=session"
//   "name=r-least priority=1 url=/api/* least=10.0.2.1,10.0.2.2"
// Returns nullopt (with `error` filled) on malformed input.
std::optional<Rule> ParseRule(const std::string& spec, std::string* error = nullptr);

}  // namespace rules

#endif  // SRC_RULES_RULE_H_
