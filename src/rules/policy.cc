#include "src/rules/policy.h"

namespace rules {

std::vector<Rule> Compile(const WeightedSplitPolicy& p) {
  Rule r;
  r.name = p.name;
  r.priority = p.priority;
  r.match = p.match;
  r.action.type = ActionType::kWeightedSplit;
  r.action.backends = p.backends;
  return {r};
}

std::vector<Rule> Compile(const PrimaryBackupPolicy& p) {
  Rule primary;
  primary.name = p.name + "-primary";
  primary.priority = p.priority;
  primary.match = p.match;
  primary.action.type = ActionType::kWeightedSplit;
  primary.action.backends = p.primaries;

  Rule backup;
  backup.name = p.name + "-backup";
  backup.priority = p.priority - 1;
  backup.match = p.match;
  backup.action.type = ActionType::kWeightedSplit;
  backup.action.backends = p.backups;
  return {primary, backup};
}

std::vector<Rule> Compile(const StickySessionPolicy& p) {
  Rule sticky;
  sticky.name = p.name + "-sticky";
  sticky.priority = p.priority + 1;  // Affinity outranks the fallback split.
  sticky.match = p.match;
  sticky.match.cookie_name = p.cookie;
  sticky.action.type = ActionType::kStickyTable;
  sticky.action.sticky_cookie = p.cookie;

  Rule fallback;
  fallback.name = p.name + "-fallback";
  fallback.priority = p.priority;
  fallback.match = p.match;
  fallback.action.type = ActionType::kWeightedSplit;
  fallback.action.backends = p.fallback;
  return {sticky, fallback};
}

std::vector<Rule> Compile(const LeastLoadedPolicy& p) {
  Rule r;
  r.name = p.name;
  r.priority = p.priority;
  r.match = p.match;
  r.action.type = ActionType::kLeastLoaded;
  r.action.backends = p.backends;
  return {r};
}

}  // namespace rules
