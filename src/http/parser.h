// Incremental HTTP parsers.
//
// Bytes arrive from TCP in arbitrary segment boundaries; these parsers
// accumulate until a full message (headers + Content-Length body) is
// available, then surface it. They also expose `HaveHeaders()` early, which
// is what a Yoda instance needs: the backend is selected as soon as the
// request *header* is complete, before any body arrives.

#ifndef SRC_HTTP_PARSER_H_
#define SRC_HTTP_PARSER_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "src/http/message.h"

namespace http {

enum class ParseStatus {
  kNeedMore,   // Incomplete; feed more bytes.
  kComplete,   // A full message is ready via Take*().
  kError,      // Malformed input.
};

class RequestParser {
 public:
  // Appends bytes and attempts to advance. Returns the current status.
  ParseStatus Feed(std::string_view bytes);

  // True once the request line + headers have been fully received.
  bool HaveHeaders() const { return have_headers_; }

  // Valid once HaveHeaders(); body may still be incomplete.
  const Request& request() const { return request_; }

  // Once kComplete, removes and returns the parsed request, retaining any
  // pipelined bytes that followed it; the parser is then ready for the next
  // request on the same connection.
  Request TakeRequest();

  // Current status without feeding more data.
  ParseStatus status() const { return status_; }

  const std::string& error() const { return error_; }

 private:
  ParseStatus Advance();

  std::string buf_;
  Request request_;
  bool have_headers_ = false;
  std::size_t body_needed_ = 0;
  ParseStatus status_ = ParseStatus::kNeedMore;
  std::string error_;
};

class ResponseParser {
 public:
  ParseStatus Feed(std::string_view bytes);
  bool HaveHeaders() const { return have_headers_; }
  const Response& response() const { return response_; }
  Response TakeResponse();
  ParseStatus status() const { return status_; }
  const std::string& error() const { return error_; }

 private:
  ParseStatus Advance();

  std::string buf_;
  Response response_;
  bool have_headers_ = false;
  std::size_t body_needed_ = 0;
  ParseStatus status_ = ParseStatus::kNeedMore;
  std::string error_;
};

}  // namespace http

#endif  // SRC_HTTP_PARSER_H_
