#include "src/http/parser.h"

#include <charconv>
#include <vector>

namespace http {
namespace {

// Splits "a: b" header lines; returns false on malformed lines.
bool ParseHeaderLine(std::string_view line, std::string* name, std::string* value) {
  std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return false;
  }
  *name = ToLower(std::string(line.substr(0, colon)));
  std::size_t vb = line.find_first_not_of(" \t", colon + 1);
  if (vb == std::string_view::npos) {
    *value = "";
  } else {
    *value = std::string(line.substr(vb));
  }
  return true;
}

// Finds end of headers; returns npos if incomplete.
std::size_t HeaderBlockEnd(const std::string& buf) { return buf.find("\r\n\r\n"); }

std::vector<std::string_view> SplitLines(std::string_view block) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < block.size()) {
    std::size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      lines.push_back(block.substr(pos));
      break;
    }
    lines.push_back(block.substr(pos, eol - pos));
    pos = eol + 2;
  }
  return lines;
}

std::optional<std::size_t> ContentLength(const HeaderMap& headers) {
  auto it = headers.find("content-length");
  if (it == headers.end()) {
    return 0;  // No body framed (we do not model chunked encoding).
  }
  std::size_t n = 0;
  auto [p, ec] = std::from_chars(it->second.data(), it->second.data() + it->second.size(), n);
  if (ec != std::errc() || p != it->second.data() + it->second.size()) {
    return std::nullopt;
  }
  return n;
}

}  // namespace

ParseStatus RequestParser::Feed(std::string_view bytes) {
  if (status_ == ParseStatus::kError) {
    return status_;
  }
  buf_.append(bytes);
  return Advance();
}

ParseStatus RequestParser::Advance() {
  if (!have_headers_) {
    std::size_t end = HeaderBlockEnd(buf_);
    if (end == std::string::npos) {
      status_ = ParseStatus::kNeedMore;
      return status_;
    }
    auto lines = SplitLines(std::string_view(buf_).substr(0, end));
    if (lines.empty()) {
      error_ = "empty request";
      status_ = ParseStatus::kError;
      return status_;
    }
    // Request line: METHOD SP URL SP VERSION.
    std::string_view rl = lines[0];
    std::size_t sp1 = rl.find(' ');
    std::size_t sp2 = rl.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) {
      error_ = "malformed request line";
      status_ = ParseStatus::kError;
      return status_;
    }
    request_ = Request{};
    request_.method = std::string(rl.substr(0, sp1));
    request_.url = std::string(rl.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(rl.substr(sp2 + 1));
    for (std::size_t i = 1; i < lines.size(); ++i) {
      std::string name;
      std::string value;
      if (!ParseHeaderLine(lines[i], &name, &value)) {
        error_ = "malformed header line";
        status_ = ParseStatus::kError;
        return status_;
      }
      request_.headers[name] = value;
    }
    auto cl = ContentLength(request_.headers);
    if (!cl) {
      error_ = "bad content-length";
      status_ = ParseStatus::kError;
      return status_;
    }
    body_needed_ = *cl;
    have_headers_ = true;
    buf_.erase(0, end + 4);
  }
  if (buf_.size() >= body_needed_) {
    request_.body = buf_.substr(0, body_needed_);
    buf_.erase(0, body_needed_);
    status_ = ParseStatus::kComplete;
  } else {
    status_ = ParseStatus::kNeedMore;
  }
  return status_;
}

Request RequestParser::TakeRequest() {
  Request out = std::move(request_);
  request_ = Request{};
  have_headers_ = false;
  body_needed_ = 0;
  status_ = ParseStatus::kNeedMore;
  if (!buf_.empty()) {
    Advance();  // Pipelined request may already be complete.
  }
  return out;
}

ParseStatus ResponseParser::Feed(std::string_view bytes) {
  if (status_ == ParseStatus::kError) {
    return status_;
  }
  buf_.append(bytes);
  return Advance();
}

ParseStatus ResponseParser::Advance() {
  if (!have_headers_) {
    std::size_t end = HeaderBlockEnd(buf_);
    if (end == std::string::npos) {
      status_ = ParseStatus::kNeedMore;
      return status_;
    }
    auto lines = SplitLines(std::string_view(buf_).substr(0, end));
    if (lines.empty()) {
      error_ = "empty response";
      status_ = ParseStatus::kError;
      return status_;
    }
    // Status line: VERSION SP CODE SP REASON.
    std::string_view sl = lines[0];
    std::size_t sp1 = sl.find(' ');
    if (sp1 == std::string_view::npos) {
      error_ = "malformed status line";
      status_ = ParseStatus::kError;
      return status_;
    }
    std::size_t sp2 = sl.find(' ', sp1 + 1);
    response_ = Response{};
    response_.version = std::string(sl.substr(0, sp1));
    std::string_view code = sp2 == std::string_view::npos ? sl.substr(sp1 + 1)
                                                          : sl.substr(sp1 + 1, sp2 - sp1 - 1);
    int status_code = 0;
    auto [p, ec] = std::from_chars(code.data(), code.data() + code.size(), status_code);
    if (ec != std::errc() || p != code.data() + code.size()) {
      error_ = "malformed status code";
      status_ = ParseStatus::kError;
      return status_;
    }
    response_.status = status_code;
    if (sp2 != std::string_view::npos) {
      response_.reason = std::string(sl.substr(sp2 + 1));
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      std::string name;
      std::string value;
      if (!ParseHeaderLine(lines[i], &name, &value)) {
        error_ = "malformed header line";
        status_ = ParseStatus::kError;
        return status_;
      }
      response_.headers[name] = value;
    }
    auto cl = ContentLength(response_.headers);
    if (!cl) {
      error_ = "bad content-length";
      status_ = ParseStatus::kError;
      return status_;
    }
    body_needed_ = *cl;
    have_headers_ = true;
    buf_.erase(0, end + 4);
  }
  if (buf_.size() >= body_needed_) {
    response_.body = buf_.substr(0, body_needed_);
    buf_.erase(0, body_needed_);
    status_ = ParseStatus::kComplete;
  } else {
    status_ = ParseStatus::kNeedMore;
  }
  return status_;
}

Response ResponseParser::TakeResponse() {
  Response out = std::move(response_);
  response_ = Response{};
  have_headers_ = false;
  body_needed_ = 0;
  status_ = ParseStatus::kNeedMore;
  if (!buf_.empty()) {
    Advance();
  }
  return out;
}

}  // namespace http
