#include "src/http/message.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace http {
namespace {

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

bool MessageKeepAlive(const std::string& version, const HeaderMap& headers) {
  auto it = headers.find("connection");
  if (it != headers.end()) {
    std::string v = ToLower(it->second);
    if (v == "close") {
      return false;
    }
    if (v == "keep-alive") {
      return true;
    }
  }
  return version == "HTTP/1.1";
}

}  // namespace

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::optional<std::string> Request::Header(const std::string& name) const {
  auto it = headers.find(ToLower(name));
  if (it == headers.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Request::SetHeader(const std::string& name, std::string value) {
  headers[ToLower(name)] = std::move(value);
}

std::map<std::string, std::string> Request::Cookies() const {
  std::map<std::string, std::string> out;
  auto cookie = Header("cookie");
  if (!cookie) {
    return out;
  }
  std::stringstream ss(*cookie);
  std::string item;
  while (std::getline(ss, item, ';')) {
    std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    out[Trim(item.substr(0, eq))] = Trim(item.substr(eq + 1));
  }
  return out;
}

bool Request::KeepAlive() const { return MessageKeepAlive(version, headers); }

std::string Request::Serialize() const {
  std::string out = method + " " + url + " " + version + "\r\n";
  HeaderMap h = headers;
  if (!body.empty() && !h.contains("content-length")) {
    h["content-length"] = std::to_string(body.size());
  }
  for (const auto& [k, v] : h) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::optional<std::string> Response::Header(const std::string& name) const {
  auto it = headers.find(ToLower(name));
  if (it == headers.end()) {
    return std::nullopt;
  }
  return it->second;
}

void Response::SetHeader(const std::string& name, std::string value) {
  headers[ToLower(name)] = std::move(value);
}

bool Response::KeepAlive() const { return MessageKeepAlive(version, headers); }

std::string Response::Serialize() const {
  std::string out = version + " " + std::to_string(status) + " " + reason + "\r\n";
  HeaderMap h = headers;
  if (!h.contains("content-length")) {
    h["content-length"] = std::to_string(body.size());
  }
  for (const auto& [k, v] : h) {
    out += k + ": " + v + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

Request MakeGet(const std::string& url, const std::string& host, const std::string& version) {
  Request r;
  r.method = "GET";
  r.url = url;
  r.version = version;
  r.SetHeader("host", host);
  return r;
}

Response MakeOk(std::string body, const std::string& version) {
  Response r;
  r.status = 200;
  r.reason = "OK";
  r.version = version;
  r.body = std::move(body);
  return r;
}

Response MakeNotFound(const std::string& version) {
  Response r;
  r.status = 404;
  r.reason = "Not Found";
  r.version = version;
  r.body = "not found";
  return r;
}

}  // namespace http
