// HTTP/1.0 and HTTP/1.1 message model.
//
// Only the features the L7 LB inspects are modelled: request line (method,
// URL, version), headers (Host, Cookie, Content-Length, Connection,
// Accept-Language), and bodies framed by Content-Length. This is the content
// the Yoda rule engine matches on and that proxies must buffer before
// selecting a backend.

#ifndef SRC_HTTP_MESSAGE_H_
#define SRC_HTTP_MESSAGE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace http {

// Header names are matched case-insensitively (stored lower-cased).
using HeaderMap = std::map<std::string, std::string>;

std::string ToLower(std::string s);

struct Request {
  std::string method = "GET";
  std::string url = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  std::optional<std::string> Header(const std::string& name) const;
  void SetHeader(const std::string& name, std::string value);

  // Parses the Cookie header into name->value pairs.
  std::map<std::string, std::string> Cookies() const;

  // True if the connection should stay open after this exchange
  // (HTTP/1.1 default keep-alive; HTTP/1.0 requires Connection: keep-alive).
  bool KeepAlive() const;

  // Serializes to wire format.
  std::string Serialize() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  std::optional<std::string> Header(const std::string& name) const;
  void SetHeader(const std::string& name, std::string value);
  bool KeepAlive() const;

  std::string Serialize() const;
};

// Convenience factories.
Request MakeGet(const std::string& url, const std::string& host,
                const std::string& version = "HTTP/1.1");
Response MakeOk(std::string body, const std::string& version = "HTTP/1.1");
Response MakeNotFound(const std::string& version = "HTTP/1.1");

}  // namespace http

#endif  // SRC_HTTP_MESSAGE_H_
