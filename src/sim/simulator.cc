#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace sim {

void TimerHandle::Cancel() {
  if (cancelled_ != nullptr) {
    *cancelled_ = true;
  }
}

bool TimerHandle::pending() const { return cancelled_ != nullptr && !*cancelled_; }

TimerHandle Simulator::At(Time when, std::function<void()> fn, bool daemon) {
  assert(when >= now_ && "cannot schedule events in the past");
  Event ev;
  ev.when = when < now_ ? now_ : when;
  ev.seq = next_seq_++;
  ev.daemon = daemon;
  ev.fn = std::move(fn);
  ev.cancelled = std::make_shared<bool>(false);
  TimerHandle handle(ev.cancelled);
  if (!daemon) {
    ++queued_non_daemon_;
  }
  queue_.push(std::move(ev));
  if (queue_.size() > queue_high_water_) {
    queue_high_water_ = queue_.size();
  }
  return handle;
}

TimerHandle Simulator::After(Duration delay, std::function<void()> fn, bool daemon) {
  if (delay < 0) {
    delay = 0;
  }
  return At(now_ + delay, std::move(fn), daemon);
}

bool Simulator::RunOne() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (!ev.daemon) {
      --queued_non_daemon_;
    }
    if (*ev.cancelled) {
      continue;
    }
    now_ = ev.when;
    *ev.cancelled = true;  // Marks the handle as no longer pending.
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  // Stop once only daemon events (self-rescheduling housekeeping) remain —
  // otherwise a periodic monitor would keep the loop alive forever.
  while (queued_non_daemon_ > 0 && RunOne()) {
  }
}

void Simulator::RunUntil(Time deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

int Simulator::Step(int n) {
  int done = 0;
  while (done < n && RunOne()) {
    ++done;
  }
  return done;
}

}  // namespace sim
