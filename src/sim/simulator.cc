#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <utility>

namespace sim {

void TimerHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelEvent(idx_, gen_);
  }
}

bool TimerHandle::pending() const { return sim_ != nullptr && sim_->EventPending(idx_, gen_); }

std::uint32_t Simulator::Alloc() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = Rec(idx).next;
    --chunk_free_[idx >> kChunkShift];
    return idx;
  }
  if ((allocated_ >> kChunkShift) == chunks_.size()) {
    chunks_.push_back(std::make_unique<EventRec[]>(kChunkSize));
    chunk_free_.push_back(0);
    if (fresh_gen_base_ != 0) {
      // Region re-grown after a trim: start generations above every handle
      // that ever named the dropped records, so stale handles stay inert.
      EventRec* recs = chunks_.back().get();
      for (std::uint32_t i = 0; i < kChunkSize; ++i) {
        recs[i].gen = fresh_gen_base_;
      }
    }
  }
  return allocated_++;
}

void Simulator::Free(std::uint32_t idx) {
  EventRec& rec = Rec(idx);
  // Release the closure now (guarded: the raw path never sets fn). raw_fn and
  // cancelled stay stale here — At()/Admit() rewrite them on reuse.
  if (rec.fn) {
    rec.fn = nullptr;
  }
  rec.next = free_head_;
  free_head_ = idx;
  ++chunk_free_[idx >> kChunkShift];
  MaybeTrimSlab();
}

void Simulator::MaybeTrimSlab() {
  // Amortized: probe every 4096 frees. The droppability check reads the
  // incrementally-maintained per-chunk free counters, so a probe that finds
  // nothing to drop costs O(chunks) — the O(free-records) freelist rebuild
  // only runs when a wholly-free suffix actually exists.
  if (++frees_since_trim_check_ < 4096) {
    return;
  }
  frees_since_trim_check_ = 0;
  const std::size_t free_recs = static_cast<std::size_t>(allocated_) - live_events_;
  if (free_recs < (1u << 14) || free_recs < live_events_ * 3) {
    return;
  }
  const std::size_t nchunks = chunks_.size();
  constexpr std::size_t kFloorChunks = 16;  // Always keep ~16K records around.
  // A chunk is droppable iff every record ever allocated from it is free.
  // Only a wholly-free *suffix* can go: record indices must stay dense below
  // allocated_ so Alloc()'s bump pointer and Rec() addressing keep working.
  std::size_t keep = nchunks;
  while (keep > kFloorChunks) {
    const std::size_t c = keep - 1;
    const std::size_t chunk_alloc =
        std::min<std::size_t>(kChunkSize, static_cast<std::size_t>(allocated_) - (c << kChunkShift));
    if (chunk_free_[c] != chunk_alloc) {
      break;
    }
    --keep;
  }
  if (keep == nchunks) {
    return;
  }
  TrimSlab(keep);
}

void Simulator::TrimSlab(std::size_t keep) {
  const std::uint32_t new_allocated = static_cast<std::uint32_t>(keep << kChunkShift);
  // Rebuild the freelist without the dropped indices, preserving order.
  std::uint32_t new_head = kNil;
  std::uint32_t tail = kNil;
  std::uint32_t dropped_gen_max = 0;
  for (std::uint32_t i = free_head_; i != kNil;) {
    const std::uint32_t next = Rec(i).next;
    if (i < new_allocated) {
      if (tail == kNil) {
        new_head = i;
      } else {
        Rec(tail).next = i;
      }
      Rec(i).next = kNil;
      tail = i;
    } else {
      dropped_gen_max = std::max(dropped_gen_max, Rec(i).gen);
    }
    i = next;
  }
  fresh_gen_base_ = std::max(fresh_gen_base_, dropped_gen_max + 1);
  free_head_ = new_head;
  allocated_ = new_allocated;
  chunks_.resize(keep);
  chunk_free_.resize(keep);
}

void Simulator::ListAppend(SlotList& list, std::uint32_t idx) {
  EventRec& rec = Rec(idx);
  rec.next = kNil;
  rec.prev = list.tail;
  if (list.tail == kNil) {
    list.head = idx;
  } else {
    Rec(list.tail).next = idx;
  }
  list.tail = idx;
}

void Simulator::ListUnlink(SlotList& list, std::uint32_t idx) {
  EventRec& rec = Rec(idx);
  if (rec.prev == kNil) {
    list.head = rec.next;
  } else {
    Rec(rec.prev).next = rec.next;
  }
  if (rec.next == kNil) {
    list.tail = rec.prev;
  } else {
    Rec(rec.next).prev = rec.prev;
  }
  rec.next = kNil;
  rec.prev = kNil;
}

void Simulator::PushDue(std::uint32_t idx) {
  EventRec& rec = Rec(idx);
  rec.level = kDueLevel;
  // Single-tick invariant: see DueEntry. The key orders by sub-tick `when`
  // first, insertion sequence second.
  assert((rec.when >> kTickShift) == wheel_tick_);
  const std::uint64_t subtick = static_cast<std::uint64_t>(rec.when) & ((1u << kTickShift) - 1);
  const DueEntry entry{(subtick << (64 - kTickShift)) | rec.seq, idx};
  if (due_batching_) {
    // AdvanceWheel sorts the whole run once after draining; just append.
    due_.push_back(entry);
    return;
  }
  // Runtime insertion (a callback scheduling within the current tick): keep
  // the remaining run sorted.
  due_.insert(std::upper_bound(due_.begin() + static_cast<std::ptrdiff_t>(due_head_), due_.end(),
                               entry, DueLess{}),
              entry);
}

void Simulator::PopDue() {
  if (++due_head_ == due_.size()) {
    due_.clear();
    due_head_ = 0;
  }
}

void Simulator::ScheduleRec(std::uint32_t idx) {
  const std::int64_t tick = Rec(idx).when >> kTickShift;
  if (tick <= wheel_tick_) {
    PushDue(idx);
  } else {
    WheelInsert(idx, tick);
  }
}

void Simulator::ClearSlotBit(int level, int slot) {
  if (level == 0) {
    std::uint64_t& word = occupied0_[static_cast<std::size_t>(slot >> 6)];
    word &= ~(1ull << (slot & 63));
    if (word == 0) {
      occ0_summary_ &= ~(1ull << (slot >> 6));
      if (occ0_summary_ == 0) {
        level_mask_ &= static_cast<std::uint8_t>(~1u);
      }
    }
  } else {
    std::uint64_t& word = occupied_hi_[static_cast<std::size_t>(level - 1)];
    word &= ~(1ull << slot);
    if (word == 0) {
      level_mask_ &= static_cast<std::uint8_t>(~(1u << level));
    }
  }
}

int Simulator::NextOccupied0(int start) const {
  const int w = start >> 6;
  const int b = start & 63;
  // Circular order from `start`: the rest of word w, then words w+1..w+63
  // (located via the summary), then word w's low bits as the final lap.
  const std::uint64_t high = occupied0_[static_cast<std::size_t>(w)] >> b;
  if (high != 0) {
    return std::countr_zero(high);
  }
  const std::uint64_t others = occ0_summary_ & ~(1ull << w);
  if (others != 0) {
    const std::uint64_t rotated = std::rotr(others, (w + 1) & 63);
    const int w2 = (w + 1 + std::countr_zero(rotated)) & 63;
    const int slot = (w2 << 6) + std::countr_zero(occupied0_[static_cast<std::size_t>(w2)]);
    return (slot - start) & (kL0Slots - 1);
  }
  const std::uint64_t low =
      occupied0_[static_cast<std::size_t>(w)] & ((1ull << b) - 1);  // b == 0 gives 0.
  if (low != 0) {
    return ((w << 6) + std::countr_zero(low) - start) & (kL0Slots - 1);
  }
  return -1;
}

void Simulator::WheelInsert(std::uint32_t idx, std::int64_t tick) {
  EventRec& rec = Rec(idx);
  const std::uint64_t delta = static_cast<std::uint64_t>(tick - wheel_tick_);  // >= 1.
  if (delta >= (1ull << (kL0Bits + kLevelBits * (kLevels - 1)))) {
    rec.level = kOverflowLevel;
    ListAppend(overflow_, idx);
    if (overflow_count_ == 0 || tick < overflow_min_tick_) {
      overflow_min_tick_ = tick;
    }
    ++overflow_count_;
    return;
  }
  // Level 0 takes every delta under 4096 ticks: one slot per tick, so the
  // common packet/timer event inserts once and never cascades. This branch is
  // the fast path — keep it straight-line, no shared helper calls.
  if (delta < kL0Slots) {
    const int slot = static_cast<int>(tick & (kL0Slots - 1));
    rec.level = 0;
    rec.slot = static_cast<std::uint16_t>(slot);
    auto& vec = slots0_[static_cast<std::size_t>(slot)];
    rec.prev = static_cast<std::uint32_t>(vec.size());  // Position, for O(1) cancel.
    vec.push_back(idx);
    occupied0_[static_cast<std::size_t>(slot >> 6)] |= 1ull << (slot & 63);
    occ0_summary_ |= 1ull << (slot >> 6);
    level_mask_ |= 1u;
    return;
  }
  // Coarse level l >= 1 covers deltas in [2^(12+6(l-1)), 2^(12+6l)): within
  // it, every slot maps to a unique coarse tick in (current, current + 64].
  const int level = 1 + (std::bit_width(delta) - 1 - kL0Bits) / kLevelBits;
  const int slot = static_cast<int>((tick >> LevelShift(level)) & (kSlots - 1));
  rec.level = static_cast<std::uint8_t>(level);
  rec.slot = static_cast<std::uint16_t>(slot);
  auto& vec = slots_hi_[static_cast<std::size_t>(level - 1)][static_cast<std::size_t>(slot)];
  rec.prev = static_cast<std::uint32_t>(vec.size());  // Position, for O(1) cancel.
  vec.push_back(idx);
  occupied_hi_[static_cast<std::size_t>(level - 1)] |= 1ull << slot;
  level_mask_ |= static_cast<std::uint8_t>(1u << level);
}

void Simulator::DrainSlotToDue(int slot) {
  auto& vec = slots0_[static_cast<std::size_t>(slot)];
  ClearSlotBit(0, slot);
  for (const std::uint32_t idx : vec) {
    PushDue(idx);
  }
  vec.clear();  // Keeps capacity; steady state allocates nothing.
}

void Simulator::CascadeSlot(int level, int slot) {
  auto& vec = slots_hi_[static_cast<std::size_t>(level - 1)][static_cast<std::size_t>(slot)];
  ClearSlotBit(level, slot);
  // Swap the slot out before redistributing: a record whose remaining delta
  // still maps to this level re-enters this very slot (same index, next lap
  // of the ring), so iterating the live vector would both invalidate the
  // iteration and then wipe the re-inserted record.
  cascade_scratch_.swap(vec);
  for (const std::uint32_t idx : cascade_scratch_) {
    ScheduleRec(idx);
  }
  cascade_scratch_.clear();  // Keeps capacity for the next cascade.
}

void Simulator::RebuildOverflow() {
  std::vector<std::uint32_t> items;
  items.reserve(overflow_count_);
  for (std::uint32_t idx = overflow_.head; idx != kNil; idx = Rec(idx).next) {
    items.push_back(idx);
  }
  overflow_ = SlotList{};
  overflow_count_ = 0;
  if (items.empty()) {
    return;
  }
  std::int64_t true_min = std::numeric_limits<std::int64_t>::max();
  for (const std::uint32_t idx : items) {
    true_min = std::min(true_min, static_cast<std::int64_t>(Rec(idx).when >> kTickShift));
  }
  // Jump the wheel to just before the earliest overflow event; events still
  // beyond the horizon re-enter the overflow list with a fresh minimum.
  wheel_tick_ = std::max(wheel_tick_, true_min - 1);
  for (const std::uint32_t idx : items) {
    ScheduleRec(idx);
  }
}

bool Simulator::NextEventLowerBound(Time* when) const {
  // Due run first: it is sorted and holds the globally next tick, so the
  // first non-cancelled entry is the exact minimum.
  for (std::size_t i = due_head_; i < due_.size(); ++i) {
    const EventRec& rec = Rec(due_[i].idx);
    if (!rec.cancelled) {
      *when = rec.when;
      return true;
    }
  }
  // Wheel scan, mirroring AdvanceWheel's candidate search but without
  // draining or cascading: level-0 candidates are exact ticks, coarse-level
  // candidates are slot range starts (a lower bound; the slot cascades once
  // the wheel crosses its start, after which this tightens).
  std::int64_t best_tick = std::numeric_limits<std::int64_t>::max();
  if ((level_mask_ & 1u) != 0) {
    const int start = static_cast<int>((wheel_tick_ + 1) & (kL0Slots - 1));
    const int dist = NextOccupied0(start);
    best_tick = wheel_tick_ + 1 + dist;
  }
  for (std::uint8_t mask = static_cast<std::uint8_t>(level_mask_ & ~1u); mask != 0;
       mask &= static_cast<std::uint8_t>(mask - 1)) {
    const int l = std::countr_zero(mask);
    const int shift = LevelShift(l);
    const std::int64_t coarse_now = wheel_tick_ >> shift;
    const int pos = static_cast<int>(coarse_now & (kSlots - 1));
    const std::uint64_t rotated =
        std::rotr(occupied_hi_[static_cast<std::size_t>(l - 1)], (pos + 1) & (kSlots - 1));
    const int dist = std::countr_zero(rotated);
    best_tick = std::min(best_tick, (coarse_now + 1 + dist) << shift);
  }
  if (overflow_count_ > 0) {
    // overflow_min_tick_ can only be stale low (cancelled minimum): still a
    // valid lower bound.
    best_tick = std::min(best_tick, overflow_min_tick_);
  }
  if (best_tick == std::numeric_limits<std::int64_t>::max()) {
    return false;
  }
  *when = best_tick << kTickShift;
  return true;
}

bool Simulator::AdvanceWheel(std::int64_t limit_tick) {
  // Entered only with an empty due run; batch-append everything the advance
  // produces and sort once on the way out.
  due_batching_ = true;
  while (true) {
    int best_level = -1;
    int best_slot = 0;
    std::int64_t best_tick = std::numeric_limits<std::int64_t>::max();
    // Level 0 first: first occupied slot in circular order starting just
    // after the slot containing wheel_tick_ (that slot itself scans last, as
    // a full turn).
    if ((level_mask_ & 1u) != 0) {
      const int start = static_cast<int>((wheel_tick_ + 1) & (kL0Slots - 1));
      const int dist = NextOccupied0(start);
      best_tick = wheel_tick_ + 1 + dist;
      best_level = 0;
      best_slot = (start + dist) & (kL0Slots - 1);
    }
    // Skip the coarse levels when the very next tick is occupied at level 0:
    // nothing in the wheel can be earlier, and any same-tick coarse slot is
    // handled by the boundary cascade below.
    if (best_tick != wheel_tick_ + 1) {
      for (std::uint8_t mask = static_cast<std::uint8_t>(level_mask_ & ~1u); mask != 0;
           mask &= static_cast<std::uint8_t>(mask - 1)) {
        const int l = std::countr_zero(mask);
        const int shift = LevelShift(l);
        const std::int64_t coarse_now = wheel_tick_ >> shift;
        const int pos = static_cast<int>(coarse_now & (kSlots - 1));
        const std::uint64_t rotated =
            std::rotr(occupied_hi_[static_cast<std::size_t>(l - 1)], (pos + 1) & (kSlots - 1));
        const int dist = std::countr_zero(rotated);
        const std::int64_t tick = (coarse_now + 1 + dist) << shift;
        if (tick < best_tick) {
          best_tick = tick;
          best_level = l;
          best_slot = (pos + 1 + dist) & (kSlots - 1);
        }
      }
    }
    // Inclusive: an overflow event tying best_tick must enter the wheel now
    // so it competes on (when, seq) with the events already due there.
    if (overflow_count_ > 0 && overflow_min_tick_ <= best_tick) {
      RebuildOverflow();
      continue;
    }
    if (best_level < 0 || best_tick > limit_tick) {
      // Nothing pending at tick <= limit_tick. For a bounded call, park the
      // wheel at the bound: this is safe without cascades — the coarse slot
      // containing any tick <= limit_tick is either empty (its slot-start
      // candidate would otherwise have bounded best_tick) or the never-
      // occupied slot containing wheel_tick_ itself — and it keeps later
      // same-time schedules in the current tick.
      if (limit_tick != std::numeric_limits<std::int64_t>::max() && limit_tick > wheel_tick_) {
        wheel_tick_ = limit_tick;
      }
      due_batching_ = false;
      return false;
    }
    wheel_tick_ = best_tick;
    if (best_level == 0) {
      // A level-0 slot holds exactly one tick's events: they are all due now.
      DrainSlotToDue(best_slot);
    }
    // Boundary cascade: any coarse-level slot that now contains wheel_tick_
    // redistributes (events at exactly wheel_tick_ become due; current-lap
    // events re-insert at strictly lower levels; next-lap events — same slot
    // index, one ring turn ahead — re-enter the same slot for later).
    // Top-down so a cascade landing in a lower level's current slot is
    // re-examined; the live mask test keeps the common sparse case cheap.
    for (int l = kLevels - 1; l >= 1; --l) {
      if (((level_mask_ >> l) & 1u) == 0) {
        continue;
      }
      const int pos = static_cast<int>((wheel_tick_ >> LevelShift(l)) & (kSlots - 1));
      if ((occupied_hi_[static_cast<std::size_t>(l - 1)] & (1ull << pos)) != 0) {
        CascadeSlot(l, pos);
      }
    }
    if (!due_.empty()) {
      due_batching_ = false;
      std::sort(due_.begin(), due_.end(), DueLess{});
      return true;
    }
    // Everything cascaded into future slots; pick the next candidate.
  }
}

bool Simulator::PeekNextWhen(Time* when, std::int64_t limit_tick) {
  while (true) {
    while (!due_.empty()) {
      const std::uint32_t idx = due_[due_head_].idx;
      const EventRec& rec = Rec(idx);
      if (rec.cancelled) {
        PopDue();
        Free(idx);
        continue;
      }
      *when = rec.when;
      return true;
    }
    if (!AdvanceWheel(limit_tick)) {
      return false;
    }
  }
}

TimerHandle Simulator::Admit(std::uint32_t idx, Time when, bool daemon) {
  EventRec& rec = Rec(idx);
  assert(when >= now_ && "cannot schedule events in the past");
  rec.when = when < now_ ? now_ : when;
  rec.seq = next_seq_++;
  rec.daemon = daemon;
  rec.cancelled = false;
  ++live_events_;
  if (!daemon) {
    ++live_non_daemon_;
  }
  if (live_events_ > queue_high_water_) {
    queue_high_water_ = live_events_;
  }
  TimerHandle handle(this, idx, rec.gen);
  ScheduleRec(idx);
  return handle;
}

TimerHandle Simulator::At(Time when, std::function<void()> fn, bool daemon) {
  const std::uint32_t idx = Alloc();
  EventRec& rec = Rec(idx);
  rec.fn = std::move(fn);
  rec.raw_fn = nullptr;  // May be stale from a reused raw-event record.
  return Admit(idx, when, daemon);
}

TimerHandle Simulator::After(Duration delay, std::function<void()> fn, bool daemon) {
  if (delay < 0) {
    delay = 0;
  }
  return At(now_ + delay, std::move(fn), daemon);
}

TimerHandle Simulator::AtRaw(Time when, RawFn fn, void* ctx, std::uint64_t arg, bool daemon) {
  const std::uint32_t idx = Alloc();
  EventRec& rec = Rec(idx);
  rec.raw_fn = fn;
  rec.raw_ctx = ctx;
  rec.raw_arg = arg;
  return Admit(idx, when, daemon);
}

TimerHandle Simulator::AfterRaw(Duration delay, RawFn fn, void* ctx, std::uint64_t arg,
                                bool daemon) {
  if (delay < 0) {
    delay = 0;
  }
  return AtRaw(now_ + delay, fn, ctx, arg, daemon);
}

void Simulator::CancelEvent(std::uint32_t idx, std::uint32_t gen) {
  if (idx >= allocated_) {
    return;
  }
  EventRec& rec = Rec(idx);
  if (rec.gen != gen || rec.cancelled) {
    return;  // Already fired, cancelled, or the slot was reused.
  }
  ++rec.gen;
  --live_events_;
  if (!rec.daemon) {
    --live_non_daemon_;
  }
  if (rec.level == kDueLevel) {
    // Heap entries cannot be unlinked in O(1); mark and free at pop.
    rec.cancelled = true;
    return;
  }
  if (rec.level == kOverflowLevel) {
    ListUnlink(overflow_, idx);
    --overflow_count_;  // overflow_min_tick_ may go stale; that is benign.
    Free(idx);
    return;
  }
  // Swap-remove from the slot vector; rec.prev is its position there.
  auto& vec = SlotVec(rec.level, rec.slot);
  const std::uint32_t last = vec.back();
  vec[rec.prev] = last;
  Rec(last).prev = rec.prev;
  vec.pop_back();
  if (vec.empty()) {
    ClearSlotBit(rec.level, rec.slot);
  }
  Free(idx);
}

bool Simulator::EventPending(std::uint32_t idx, std::uint32_t gen) const {
  return idx < allocated_ && Rec(idx).gen == gen && !Rec(idx).cancelled;
}

bool Simulator::AuditConsistency() const {
  std::size_t found = 0;
  const auto check_slot = [&](int l, int s, const std::vector<std::uint32_t>& vec) {
    for (std::size_t pos = 0; pos < vec.size(); ++pos) {
      const EventRec& rec = Rec(vec[pos]);
      if (rec.level != l || rec.slot != s || rec.prev != pos) {
        std::fprintf(stderr, "audit: rec %u at L%d slot %d pos %zu has level=%d slot=%d prev=%u\n",
                     vec[pos], l, s, pos, rec.level, rec.slot, rec.prev);
        return false;
      }
      const std::int64_t tick = rec.when >> kTickShift;
      if (tick <= wheel_tick_) {
        std::fprintf(stderr, "audit: rec %u in wheel but tick %lld <= wheel_tick %lld\n", vec[pos],
                     static_cast<long long>(tick), static_cast<long long>(wheel_tick_));
        return false;
      }
      ++found;
    }
    return true;
  };
  std::uint64_t summary = 0;
  for (int w = 0; w < kL0Slots / 64; ++w) {
    std::uint64_t bits = 0;
    for (int b = 0; b < 64; ++b) {
      const int s = (w << 6) + b;
      const auto& vec = slots0_[static_cast<std::size_t>(s)];
      if (!vec.empty()) {
        bits |= 1ull << b;
      }
      if (!check_slot(0, s, vec)) {
        return false;
      }
    }
    if (bits != occupied0_[static_cast<std::size_t>(w)]) {
      std::fprintf(stderr, "audit: L0 word %d occupied=%llx actual=%llx\n", w,
                   static_cast<unsigned long long>(occupied0_[static_cast<std::size_t>(w)]),
                   static_cast<unsigned long long>(bits));
      return false;
    }
    if (bits != 0) {
      summary |= 1ull << w;
    }
  }
  if (summary != occ0_summary_) {
    std::fprintf(stderr, "audit: L0 summary=%llx actual=%llx\n",
                 static_cast<unsigned long long>(occ0_summary_),
                 static_cast<unsigned long long>(summary));
    return false;
  }
  if ((level_mask_ & 1) != (summary != 0 ? 1 : 0)) {
    std::fprintf(stderr, "audit: L0 level_mask bit wrong\n");
    return false;
  }
  for (int l = 1; l < kLevels; ++l) {
    std::uint64_t bits = 0;
    for (int s = 0; s < kSlots; ++s) {
      const auto& vec = slots_hi_[static_cast<std::size_t>(l - 1)][static_cast<std::size_t>(s)];
      if (!vec.empty()) {
        bits |= 1ull << s;
      }
      if (!check_slot(l, s, vec)) {
        return false;
      }
    }
    if (bits != occupied_hi_[static_cast<std::size_t>(l - 1)]) {
      std::fprintf(stderr, "audit: L%d occupied=%llx actual=%llx\n", l,
                   static_cast<unsigned long long>(occupied_hi_[static_cast<std::size_t>(l - 1)]),
                   static_cast<unsigned long long>(bits));
      return false;
    }
    if (((level_mask_ >> l) & 1) != (bits != 0 ? 1 : 0)) {
      std::fprintf(stderr, "audit: L%d level_mask bit wrong\n", l);
      return false;
    }
  }
  for (std::size_t i = due_head_; i < due_.size(); ++i) {
    if (!Rec(due_[i].idx).cancelled) {
      ++found;
    }
  }
  for (std::uint32_t idx = overflow_.head; idx != kNil; idx = Rec(idx).next) {
    ++found;
  }
  if (found != live_events_) {
    std::fprintf(stderr, "audit: found %zu live records but live_events_=%zu\n", found,
                 live_events_);
    return false;
  }
  return true;
}

bool Simulator::RunOne() {
  Time next = 0;
  if (!PeekNextWhen(&next)) {
    return false;
  }
  const std::uint32_t idx = due_[due_head_].idx;
  PopDue();
  EventRec& rec = Rec(idx);
  now_ = rec.when;
  ++rec.gen;  // The handle is no longer pending.
  --live_events_;
  if (!rec.daemon) {
    --live_non_daemon_;
  }
  ++executed_;
  if (rec.raw_fn != nullptr) {
    const RawFn fn = rec.raw_fn;
    void* ctx = rec.raw_ctx;
    const std::uint64_t arg = rec.raw_arg;
    Free(idx);
    fn(ctx, arg);
  } else {
    // Invoke in place (record storage is chunk-stable and the bumped gen
    // already blocks reuse-by-handle); Free afterwards destroys the closure.
    rec.fn();
    Free(idx);
  }
  return true;
}

void Simulator::Run() {
  // Stop once only daemon events (self-rescheduling housekeeping) remain —
  // otherwise a periodic monitor would keep the loop alive forever.
  while (live_non_daemon_ > 0 && RunOne()) {
  }
}

void Simulator::RunUntil(Time deadline) {
  // Bound the wheel advance at the deadline's tick: the wheel must not drain
  // a future tick this call will not fire, or events scheduled afterwards at
  // the current time would join a due run belonging to a later tick.
  const std::int64_t limit_tick = deadline >> kTickShift;
  Time next = 0;
  while (PeekNextWhen(&next, limit_tick) && next <= deadline) {
    RunOne();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

int Simulator::Step(int n) {
  int done = 0;
  while (done < n && RunOne()) {
    ++done;
  }
  return done;
}

}  // namespace sim
