#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace sim {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sorted_ = false;
}

void Histogram::MergeFrom(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Mean() const {
  if (samples_.empty()) {
    return 0;
  }
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  EnsureSorted();
  return samples_.empty() ? 0 : samples_.front();
}

double Histogram::Max() const {
  EnsureSorted();
  return samples_.empty() ? 0 : samples_.back();
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  // Clamp rather than assert: the assert vanishes in release builds, and a
  // negative p would otherwise wrap the index computation below.
  if (p <= 0) {
    return samples_.front();
  }
  if (p >= 100) {
    return samples_.back();
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  auto idx = static_cast<std::size_t>(rank);
  if (idx + 1 >= samples_.size()) {
    return samples_.back();
  }
  double frac = rank - static_cast<double>(idx);
  return samples_[idx] * (1 - frac) + samples_[idx + 1] * frac;
}

std::vector<std::pair<double, double>> Histogram::Cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    std::size_t idx = std::min(samples_.size() - 1,
                               static_cast<std::size_t>(frac * static_cast<double>(samples_.size())));
    out.emplace_back(samples_[idx], frac);
  }
  return out;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

void WindowedRate::Record(Time now, double amount) {
  FlushUpTo(now);
  in_window_ += amount;
}

void WindowedRate::FlushUpTo(Time now) {
  while (now >= window_start_ + window_) {
    double rate = in_window_ / ToSeconds(window_);
    closed_.emplace_back(window_start_, rate);
    window_start_ += window_;
    in_window_ = 0;
  }
}

double UtilizationTracker::Utilization(Time now) const {
  Duration elapsed = now - window_start_;
  if (elapsed <= 0) {
    return 0;
  }
  return static_cast<double>(busy_) / (static_cast<double>(elapsed) * capacity_);
}

void UtilizationTracker::Reset(Time now) {
  window_start_ = now;
  busy_ = 0;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace sim
