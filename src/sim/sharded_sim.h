// Parallel discrete-event engine: S logical shards, W worker threads,
// deterministic epoch-barrier synchronization.
//
// Each shard owns a full sim::Simulator (its own timer wheel, clock and event
// slab). Components are partitioned across shards at build time; within a
// shard everything runs exactly as in the single-threaded simulator. Cross-
// shard interactions never touch another shard's state directly — they post
// mail (a timestamped closure) into a lock-free SPSC mailbox, and mail is
// integrated into the destination shard's event queue only at epoch barriers.
//
// Conservative time-windowed synchronization: the scheduler repeatedly
//   1. computes T = min over shards of the next pending event time,
//   2. lets every shard run independently through the window [T, T + delta),
//      where delta (cfg.window) is no larger than the minimum cross-shard
//      delivery latency,
//   3. at the barrier, drains every mailbox in a fixed order (source shard
//      0..S-1, FIFO within a queue) into the destination simulators.
// Because any mail produced inside a window carries a delivery time
// >= window end (its latency is >= delta), no shard can receive an event in
// its own past — the classic conservative-lookahead argument. Mail with an
// earlier stamp (control-plane CallOn/Broadcast, which model "applies at the
// next config epoch" semantics) is clamped to the barrier time, which is the
// same instant for every worker count.
//
// Determinism: the shard count S is a fixed property of the workload, NOT the
// thread count. W only decides how many OS threads execute the (identical)
// per-shard work; each Simulator is only ever touched by its one owning
// worker, windows and barrier times depend only on event timestamps, and the
// drain order is fixed. Hence the event interleaving — and any trace digest —
// is byte-identical for any W >= 1 given the same seed, and W == 1 executes
// the epoch loop inline with no threads at all.

#ifndef SRC_SIM_SHARDED_SIM_H_
#define SRC_SIM_SHARDED_SIM_H_

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/spsc_queue.h"
#include "src/sim/time.h"

namespace sim {

class ShardedSim {
 public:
  struct Config {
    int shards = 8;
    int workers = 1;               // Clamped to [1, shards].
    Duration window = Usec(200);   // Must be <= min cross-shard latency.
  };

  explicit ShardedSim(Config cfg);
  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;
  ~ShardedSim();

  int shards() const { return shards_; }
  int workers() const { return workers_; }
  Duration window() const { return window_; }
  Simulator& shard(int i) { return *sims_[static_cast<std::size_t>(i)]; }

  // Shard index of the worker currently executing an event on this thread,
  // or -1 when called outside the epoch loop (setup / between runs).
  static int current_shard();

  // Schedules `fn` on shard `dst` at absolute time `when`. Callable from any
  // shard's running event (posts mail) and from the outside when the engine
  // is idle (schedules directly). `when` is clamped to the epoch barrier if
  // it would land inside the destination's already-executed window; cross-
  // shard senders with latency >= window() are never clamped.
  void Post(int dst, Time when, std::function<void()> fn);

  // Runs `fn` on shard `dst` at the next epoch barrier. Control-plane ops
  // (config pushes, fault injection) use this: the effect lands a bounded
  // <= window() after the call, at an instant deterministic for any W.
  void CallOn(int dst, std::function<void()> fn);

  // Runs `fn(shard)` on every shard at the next epoch barrier, in shard
  // order within each shard's own queue. For replicated-state updates
  // (endpoint maps, link-fault rules).
  void Broadcast(std::function<void(int shard)> fn);

  // Runs until no shard holds a pending non-daemon event and no mail is in
  // flight (the multi-shard analogue of Simulator::Run).
  void Run();

  // Runs all events with timestamp <= deadline, then advances every shard's
  // clock to `deadline`.
  void RunUntil(Time deadline);

  // Common barrier time: max over shard clocks (they agree after every run).
  Time now() const;

  // True while the epoch loop is between barriers (worker context).
  bool running() const { return running_; }

 private:
  struct Mail {
    Time when = 0;  // kAtBarrier => clamp to the barrier time.
    std::function<void()> fn;
  };
  static constexpr Time kAtBarrier = -1;

  using MailQueue = SpscQueue<Mail>;

  void EpochLoop(Time deadline);
  // Phase bodies, executed by every worker for the shards it owns.
  void RunPhase(int worker);
  void DrainPhase(int worker);
  void DrainInto(int dst);

  MailQueue& queue(int src, int dst) {
    return *mail_[static_cast<std::size_t>(src * shards_ + dst)];
  }
  std::uint64_t MailInFlight() const;

  void StartWorkers();
  void WorkerMain(int worker);

  const int shards_;
  const int workers_;
  const Duration window_;

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<MailQueue>> mail_;  // [src * shards_ + dst].

  // Worker pool (only materialized when workers_ > 1). The main thread acts
  // as worker 0; workers park on the phase barrier between epochs.
  std::vector<std::thread> threads_;
  std::unique_ptr<std::barrier<>> gate_;
  enum class Phase : int { kRun, kExit };
  std::atomic<Phase> phase_{Phase::kRun};
  Time window_end_ = 0;
  bool running_ = false;
  bool pool_started_ = false;
};

}  // namespace sim

#endif  // SRC_SIM_SHARDED_SIM_H_
