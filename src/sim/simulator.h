// Discrete-event simulator core.
//
// The Simulator owns a priority queue of timestamped callbacks. Events with
// equal timestamps fire in insertion order (a monotonically increasing
// sequence number breaks ties), which keeps runs deterministic regardless of
// container implementation details.
//
// This is the substrate that replaces the paper's Azure testbed: every other
// component (TCP endpoints, the L4 mux, Yoda instances, TCPStore servers,
// clients) schedules its work through one Simulator instance.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace sim {

// Handle for a scheduled event; allows cancellation before it fires.
class TimerHandle {
 public:
  TimerHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // default-constructed handles.
  void Cancel();

  // True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending() const;

 private:
  friend class Simulator;
  explicit TimerHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}

  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `when`. `when` must be >= now().
  // Daemon events (background housekeeping like health-monitor ticks) do not
  // keep Run() alive: the loop stops once only daemon events remain.
  TimerHandle At(Time when, std::function<void()> fn, bool daemon = false);

  // Schedules `fn` to run `delay` after now(). Negative delays clamp to 0.
  TimerHandle After(Duration delay, std::function<void()> fn, bool daemon = false);

  // Runs events until no non-daemon events remain.
  void Run();

  // Runs events with timestamp <= `deadline`, then advances now() to
  // `deadline` (even if the queue still holds later events).
  void RunUntil(Time deadline);

  // Runs `n` events (or fewer if the queue drains). Returns events executed.
  int Step(int n = 1);

  // Number of events currently queued (including cancelled tombstones).
  std::size_t queued_events() const { return queue_.size(); }

  // Deepest the event queue has ever been (including cancelled tombstones);
  // an observability gauge for sizing and leak spotting.
  std::size_t queue_high_water() const { return queue_high_water_; }

  // Total events executed since construction; useful in tests.
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;
    bool daemon = false;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the next non-cancelled event. Returns false if queue empty.
  bool RunOne();

  Time now_ = 0;
  std::size_t queue_high_water_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  // Non-daemon events still in the queue (including cancelled tombstones,
  // which are reconciled when popped).
  std::uint64_t queued_non_daemon_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace sim

#endif  // SRC_SIM_SIMULATOR_H_
