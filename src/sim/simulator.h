// Discrete-event simulator core.
//
// The Simulator owns the set of timestamped callbacks. Events with equal
// timestamps fire in insertion order (a monotonically increasing sequence
// number breaks ties), which keeps runs deterministic regardless of container
// implementation details.
//
// Implementation: a hierarchical timer wheel over slab-allocated intrusive
// event records. The near level is a 4096-slot ring with one slot per
// 1.024 us tick (~4.2 ms of direct coverage — the band where almost every
// packet delay and protocol timer lands, so the common event inserts once
// and never cascades); five 64-slot coarse levels above it extend the
// horizon to ~52 days. Schedule and cancel are O(1); cancel unlinks the record
// immediately (no tombstones), so queued_events() is always the exact live
// count. Handles validate against a per-record generation counter, so a
// handle costs 16 bytes and no allocation. The dominant packet-delivery
// event kind uses the raw calling convention (AtRaw/AfterRaw: a function
// pointer plus two context words) and allocates nothing per event; the
// std::function path remains for control-plane work.
//
// Determinism: events are always popped in strict (when, seq) order — due
// events form a run sorted by exactly that key, and the wheel is only ever
// drained at the globally minimal next slot — so the firing order is
// identical to a priority queue's and independent of wheel layout.
//
// This is the substrate that replaces the paper's Azure testbed: every other
// component (TCP endpoints, the L4 mux, Yoda instances, TCPStore servers,
// clients) schedules its work through one Simulator instance.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "src/sim/time.h"

namespace sim {

class Simulator;

// Handle for a scheduled event; allows cancellation before it fires.
// Handles are 16 bytes, copyable, and allocation-free: they name a slab slot
// plus the generation the event was scheduled under, so a handle to an event
// that already fired (or whose slot was reused) is simply no longer pending.
// A non-empty handle must not outlive its Simulator.
class TimerHandle {
 public:
  TimerHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and on
  // default-constructed handles. Cancellation is O(1) and releases the event
  // record immediately — no tombstone stays behind in the queue.
  void Cancel();

  // True if the event is still pending (scheduled, not fired, not cancelled).
  bool pending() const;

 private:
  friend class Simulator;
  TimerHandle(Simulator* sim, std::uint32_t idx, std::uint32_t gen)
      : sim_(sim), idx_(idx), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t idx_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  // Raw event calling convention for hot paths: a plain function pointer and
  // two context words. Scheduling one allocates nothing (the record comes
  // from the slab freelist).
  using RawFn = void (*)(void* ctx, std::uint64_t arg);

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time.
  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `when`. `when` must be >= now().
  // Daemon events (background housekeeping like health-monitor ticks) do not
  // keep Run() alive: the loop stops once only daemon events remain.
  TimerHandle At(Time when, std::function<void()> fn, bool daemon = false);

  // Schedules `fn` to run `delay` after now(). Negative delays clamp to 0.
  TimerHandle After(Duration delay, std::function<void()> fn, bool daemon = false);

  // Allocation-free variants for per-packet work: `fn(ctx, arg)` runs at the
  // given time. Identical ordering semantics to At/After.
  TimerHandle AtRaw(Time when, RawFn fn, void* ctx, std::uint64_t arg, bool daemon = false);
  TimerHandle AfterRaw(Duration delay, RawFn fn, void* ctx, std::uint64_t arg,
                       bool daemon = false);

  // Runs events until no non-daemon events remain.
  void Run();

  // Runs events with timestamp <= `deadline`, then advances now() to
  // `deadline` (even if later events remain scheduled).
  void RunUntil(Time deadline);

  // Runs `n` events (or fewer if the queue drains). Returns events executed.
  int Step(int n = 1);

  // Number of live events currently scheduled. Exact: cancellation removes
  // the event immediately, so cancelled timers never inflate this gauge.
  std::size_t queued_events() const { return live_events_; }

  // Live events that are not daemons — the count that keeps Run() alive. The
  // sharded scheduler uses this for its global termination check.
  std::size_t pending_non_daemon() const { return live_non_daemon_; }

  // Read-only lower bound on the earliest pending event's timestamp (daemon
  // or not); false if nothing is scheduled. Exact when the due run is
  // populated or the minimum sits in level 0; for events parked in a coarse
  // wheel level it returns the slot's range start (<= the true minimum), and
  // a subsequent bounded RunUntil past that bound cascades the slot so the
  // next call strictly refines. Unlike PeekNextWhen this never advances the
  // wheel, so it is safe to call between bounded runs — the sharded
  // scheduler uses it to place epoch windows.
  bool NextEventLowerBound(Time* when) const;

  // Allocated slab capacity in event records (for memory observability).
  std::size_t slab_capacity() const { return allocated_; }

  // Deepest the live-event count has ever been; an observability gauge for
  // sizing and leak spotting. Exact for the same reason as queued_events().
  std::size_t queue_high_water() const { return queue_high_water_; }

  // Total events executed since construction; useful in tests.
  std::uint64_t executed_events() const { return executed_; }

  // Debug aid: audits the wheel/due/overflow structures (positions, levels,
  // occupancy bitmaps, live counts) and returns false on the first
  // inconsistency, printing it to stderr. O(live events); for tests only.
  bool AuditConsistency() const;

 private:
  friend class TimerHandle;

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr int kTickShift = 10;  // 1024 ns per tick.
  static constexpr int kL0Bits = 12;     // 4096 level-0 slots: one per tick, ~4.2 ms.
  static constexpr int kL0Slots = 1 << kL0Bits;
  static constexpr int kLevelBits = 6;  // 64 slots per coarse level.
  static constexpr int kSlots = 1 << kLevelBits;
  static constexpr int kLevels = 6;  // 12 + 5*6 = 42 tick bits ~= 52 days of horizon.
  static constexpr std::uint8_t kDueLevel = 0xfe;
  static constexpr std::uint8_t kOverflowLevel = 0xff;
  static constexpr int kChunkShift = 10;  // 1024 records per slab chunk.
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  struct EventRec {
    // Hot fields first: scheduling and cancel touch only the first 32 bytes
    // (one cache line holds two records' hot halves).
    Time when = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;  // Freelist / overflow-list link.
    std::uint32_t prev = kNil;  // Position in the slot vector; overflow prev link.
    std::uint32_t gen = 0;  // Bumped once per fire/cancel; validates handles.
    std::uint8_t level = 0;   // Wheel level, kDueLevel, or kOverflowLevel.
    std::uint16_t slot = 0;   // Level-0 slots need 12 bits.
    bool daemon = false;
    bool cancelled = false;  // Only for records cancelled while in the due heap.
    RawFn raw_fn = nullptr;  // Hot path; takes precedence when non-null.
    void* raw_ctx = nullptr;
    std::uint64_t raw_arg = 0;
    std::function<void()> fn;  // Generic path; empty for raw events.
  };

  struct SlotList {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  // The due run only ever holds one tick's events (AdvanceWheel is entered
  // with an empty run and drains exactly one tick; runtime pushes land in the
  // current tick), so (when, seq) order collapses to one 64-bit key: the
  // sub-tick bits of `when` above `seq`. seq would need 2^54 events to
  // overflow its field.
  struct DueEntry {
    std::uint64_t key = 0;
    std::uint32_t idx = 0;
  };
  struct DueLess {
    bool operator()(const DueEntry& a, const DueEntry& b) const { return a.key < b.key; }
  };

  EventRec& Rec(std::uint32_t idx) { return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)]; }
  const EventRec& Rec(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  // Bit position of a level's slot index within a tick value.
  static constexpr int LevelShift(int level) {
    return level == 0 ? 0 : kL0Bits + kLevelBits * (level - 1);
  }

  std::uint32_t Alloc();
  void Free(std::uint32_t idx);
  // High-water trimming: when the freelist dwarfs the live set, drop wholly-
  // free tail chunks so a burst (e.g. a 10x-scale bench phase) does not pin
  // its peak slab forever. The probe is O(chunks) via per-chunk free
  // counters; the O(free records) freelist rebuild runs only on a drop.
  void MaybeTrimSlab();
  void TrimSlab(std::size_t keep);
  TimerHandle Admit(std::uint32_t idx, Time when, bool daemon);
  void ScheduleRec(std::uint32_t idx);
  void WheelInsert(std::uint32_t idx, std::int64_t tick);
  void ListAppend(SlotList& list, std::uint32_t idx);
  void ListUnlink(SlotList& list, std::uint32_t idx);
  std::vector<std::uint32_t>& SlotVec(int level, int slot) {
    return level == 0 ? slots0_[static_cast<std::size_t>(slot)]
                      : slots_hi_[static_cast<std::size_t>(level - 1)][static_cast<std::size_t>(slot)];
  }
  void ClearSlotBit(int level, int slot);
  // Circular distance from level-0 slot `start` to the next occupied level-0
  // slot (the slot holding wheel_tick_ scans last, as a full turn). -1 if the
  // level is empty.
  int NextOccupied0(int start) const;
  void PushDue(std::uint32_t idx);
  void PopDue();
  void DrainSlotToDue(int slot);
  void CascadeSlot(int level, int slot);
  void RebuildOverflow();
  // Drains the globally next-due wheel slot into the due run. False if the
  // wheel (and overflow) hold no events at tick <= limit_tick; a bounded call
  // then parks wheel_tick_ at the bound so later schedules at the current
  // time stay in the current tick (the due run's single-tick invariant).
  bool AdvanceWheel(std::int64_t limit_tick);
  // Earliest pending (when); skims cancelled due records. False if nothing is
  // pending at tick <= limit_tick. RunUntil bounds the search at its deadline
  // tick so the wheel never drains a tick it will not fire.
  bool PeekNextWhen(Time* when,
                    std::int64_t limit_tick = std::numeric_limits<std::int64_t>::max());
  bool RunOne();
  void CancelEvent(std::uint32_t idx, std::uint32_t gen);
  bool EventPending(std::uint32_t idx, std::uint32_t gen) const;

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::size_t live_non_daemon_ = 0;
  std::size_t queue_high_water_ = 0;

  // Slab of event records; chunked so addresses stay stable, freelist-linked
  // through EventRec::next.
  std::vector<std::unique_ptr<EventRec[]>> chunks_;
  std::uint32_t allocated_ = 0;
  std::uint32_t free_head_ = kNil;
  // Trim probe stride: the droppability scan runs at most once per 4096
  // frees, so cancel-churn bursts pay O(1) amortized for it.
  std::uint32_t frees_since_trim_check_ = 0;
  // Free records per chunk, maintained on every Alloc/Free so the trim
  // probe never has to walk the freelist just to learn nothing is droppable.
  std::vector<std::uint32_t> chunk_free_;
  // Generation floor for records in chunks re-grown after a trim (keeps
  // stale handles from ever matching a fresh record at a recycled index).
  std::uint32_t fresh_gen_base_ = 0;

  // Timer wheel. All wheel-resident events have tick > wheel_tick_; events
  // at tick <= wheel_tick_ live in the due run.
  std::int64_t wheel_tick_ = -1;
  // Bit l set iff level l has any occupied slot: lets the advance scan visit
  // only live levels.
  std::uint8_t level_mask_ = 0;
  // Level-0 occupancy is a two-tier bitmap over the 4096 slots: summary bit w
  // is set iff occupied0_[w] != 0, so the circular next-slot scan touches at
  // most three words. Coarse levels fit one word each.
  std::uint64_t occ0_summary_ = 0;
  std::array<std::uint64_t, kL0Slots / 64> occupied0_{};
  std::array<std::uint64_t, kLevels - 1> occupied_hi_{};
  // Each slot is a vector of record indices, not an intrusive list: insertion
  // order inside a slot is irrelevant (the due-run sort establishes firing
  // order), so insert is a push_back and cancel a swap-remove via
  // EventRec::prev — no pointer chase through a previous tail record.
  std::array<std::vector<std::uint32_t>, kL0Slots> slots0_{};
  std::array<std::array<std::vector<std::uint32_t>, kSlots>, kLevels - 1> slots_hi_{};
  // CascadeSlot detaches a slot into this scratch before redistributing
  // (next-lap records re-enter the same slot; see CascadeSlot).
  std::vector<std::uint32_t> cascade_scratch_;

  // Events beyond the wheel horizon (~52 sim-days out); reinserted lazily.
  SlotList overflow_;
  std::uint64_t overflow_count_ = 0;
  std::int64_t overflow_min_tick_ = 0;

  // Events at the current tick as a sorted run consumed from due_head_:
  // AdvanceWheel appends a whole drain batch unsorted and sorts once (a heap
  // would charge every event two O(log n) sifts; one sort over the batch is
  // measurably cheaper), while runtime insertions — callbacks scheduling
  // within the current tick — binary-insert into the remaining run.
  std::vector<DueEntry> due_;
  std::size_t due_head_ = 0;
  bool due_batching_ = false;  // Set inside AdvanceWheel; defers sorting.
};

}  // namespace sim

#endif  // SRC_SIM_SIMULATOR_H_
