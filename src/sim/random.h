// Seeded random-number utilities for reproducible workload generation.
//
// Every stochastic component takes an explicit Rng (or a seed) so that whole
// experiments replay exactly. The distributions here are the ones the
// evaluation needs: uniform, exponential (Poisson arrivals), log-normal
// (web-object sizes), and Zipf (VIP popularity).

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Log-normal parameterised by its median and the sigma of the underlying
  // normal. Median parameterisation is convenient for matching the paper's
  // "median object size 46 KB".
  double LogNormalFromMedian(double median, double sigma);

  // True with probability p.
  bool Bernoulli(double p);

  // Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Zipf sampler over {0, ..., n-1} with exponent s, using precomputed CDF.
// Rank 0 is the most popular item.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

  // Probability mass of rank `i`.
  double Pmf(std::size_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace sim

#endif  // SRC_SIM_RANDOM_H_
