// Measurement utilities shared by the experiments: latency histograms with
// percentile queries, CDF extraction, windowed rate counters and a busy-time
// utilization tracker used by the instance CPU models.

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace sim {

// Collects raw samples; answers mean / percentile / CDF queries. Samples are
// stored exactly (the experiments are small enough that this is fine) and
// sorted lazily.
class Histogram {
 public:
  void Add(double v);
  // Appends every sample of `other` (cell-sharded runs fold per-cell
  // histograms into one aggregate).
  void MergeFrom(const Histogram& other);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;
  // Linearly interpolated percentile. p is clamped to [0, 100]; an empty
  // histogram reports 0.
  double Percentile(double p) const;

  // Returns (value, cumulative fraction) pairs at `points` evenly spaced
  // ranks, suitable for plotting a CDF.
  std::vector<std::pair<double, double>> Cdf(std::size_t points = 100) const;

  void Clear();

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Counts events and reports a rate over fixed windows of simulated time.
class WindowedRate {
 public:
  explicit WindowedRate(Duration window) : window_(window) {}

  void Record(Time now, double amount = 1.0);

  // Closes any windows ending at or before `now` and returns their
  // (window start, rate-per-second) pairs accumulated so far.
  const std::vector<std::pair<Time, double>>& Windows() const { return closed_; }
  void FlushUpTo(Time now);

 private:
  Duration window_;
  Time window_start_ = 0;
  double in_window_ = 0;
  std::vector<std::pair<Time, double>> closed_;
};

// Tracks the fraction of wall time a resource is busy. Components report
// `AddBusy(now, duration)`; utilization is busy time over elapsed window.
// Models a multi-core VM as one resource with `capacity` seconds of work
// available per second (capacity 1.0 == fully serial resource).
class UtilizationTracker {
 public:
  explicit UtilizationTracker(double capacity = 1.0) : capacity_(capacity) {}

  void AddBusy(Duration busy) { busy_ += busy; }

  // Utilization in [0, 1+] over [window_start, now]; call Reset to start a
  // new measurement window.
  double Utilization(Time now) const;
  void Reset(Time now);

  double capacity() const { return capacity_; }
  Duration busy_time() const { return busy_; }

 private:
  double capacity_;
  Time window_start_ = 0;
  Duration busy_ = 0;
};

// Formats a double with fixed precision (reporting helper).
std::string FormatDouble(double v, int precision = 2);

}  // namespace sim

#endif  // SRC_SIM_METRICS_H_
