// Lock-free single-producer/single-consumer queue used as the cross-shard
// mailbox fabric in the parallel simulator (sharded_sim.h).
//
// Design: a segmented unbounded queue. The producer appends into the tail
// segment and publishes each item by bumping the segment's `count` with a
// release store; the consumer reads `count` with an acquire load and walks
// the slots up to it. When a segment fills, the producer links a fresh one
// through an atomic `next` pointer (release) that the consumer picks up
// (acquire) once it has drained the old segment. Segments the consumer
// finishes are deleted by the consumer — there is no cross-thread free-list,
// so each side only ever touches memory it owns or that was published to it.
//
// Exactly one thread may call Push and exactly one may call Pop. The shard
// scheduler upholds this by construction: queue (src, dst) is pushed only by
// the worker running shard src and popped only by the worker that owns shard
// dst, with an epoch barrier between the producing and consuming phases.
//
// pushed()/popped() are monotone counters for occupancy accounting; their
// difference is exact whenever producer and consumer are quiescent (i.e. at
// an epoch barrier), which is the only place the scheduler reads it.

#ifndef SRC_SIM_SPSC_QUEUE_H_
#define SRC_SIM_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace sim {

template <typename T, std::size_t kSegCap = 256>
class SpscQueue {
 public:
  SpscQueue() {
    Segment* s = new Segment();
    head_ = s;
    tail_ = s;
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  ~SpscQueue() {
    // Single-threaded at destruction: drain remaining items, free segments.
    T scratch;
    while (Pop(&scratch)) {
    }
    Segment* s = head_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_relaxed);
      delete s;
      s = next;
    }
  }

  // Producer side only.
  void Push(T&& value) {
    Segment* s = tail_;
    std::size_t n = s->count.load(std::memory_order_relaxed);
    if (n == kSegCap) {
      Segment* fresh = new Segment();
      s->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      s = fresh;
      n = 0;
    }
    ::new (static_cast<void*>(s->slots + n * sizeof(T))) T(std::move(value));
    s->count.store(n + 1, std::memory_order_release);
    pushed_.fetch_add(1, std::memory_order_relaxed);
  }

  // Consumer side only. Returns false when no published item is available.
  bool Pop(T* out) {
    Segment* s = head_;
    std::size_t avail = s->count.load(std::memory_order_acquire);
    if (s->pos == avail) {
      if (avail < kSegCap) {
        return false;  // Producer still filling this segment.
      }
      Segment* next = s->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        return false;  // Full segment published but successor not linked yet.
      }
      delete s;
      head_ = s = next;
      avail = s->count.load(std::memory_order_acquire);
      if (s->pos == avail) {
        return false;
      }
    }
    T* item = s->Slot(s->pos);
    *out = std::move(*item);
    item->~T();
    ++s->pos;
    popped_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Monotone counters; (pushed - popped) is the exact occupancy when both
  // sides are quiescent under a synchronizing barrier.
  std::uint64_t pushed() const { return pushed_.load(std::memory_order_relaxed); }
  std::uint64_t popped() const { return popped_.load(std::memory_order_relaxed); }

 private:
  struct Segment {
    std::atomic<Segment*> next{nullptr};
    std::atomic<std::size_t> count{0};  // Items published by the producer.
    std::size_t pos = 0;                // Items consumed (consumer-owned).
    alignas(alignof(T)) unsigned char slots[kSegCap * sizeof(T)];

    T* Slot(std::size_t i) { return std::launder(reinterpret_cast<T*>(slots + i * sizeof(T))); }
  };

  alignas(64) Segment* head_;  // Consumer-owned.
  alignas(64) Segment* tail_;  // Producer-owned.
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> popped_{0};
};

}  // namespace sim

#endif  // SRC_SIM_SPSC_QUEUE_H_
