#include "src/sim/sharded_sim.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sim {

namespace {
constexpr Time kNever = std::numeric_limits<Time>::max();
// Shard index the current thread is executing an event for; -1 outside the
// epoch loop. Thread-local so worker threads and the main thread each see
// their own shard while phases run concurrently.
thread_local int tls_current_shard = -1;
}  // namespace

ShardedSim::ShardedSim(Config cfg)
    : shards_(std::max(1, cfg.shards)),
      workers_(std::clamp(cfg.workers, 1, std::max(1, cfg.shards))),
      window_(std::max<Duration>(1, cfg.window)) {
  sims_.reserve(static_cast<std::size_t>(shards_));
  for (int i = 0; i < shards_; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  mail_.reserve(static_cast<std::size_t>(shards_) * static_cast<std::size_t>(shards_));
  for (int i = 0; i < shards_ * shards_; ++i) {
    mail_.push_back(std::make_unique<MailQueue>());
  }
}

ShardedSim::~ShardedSim() {
  if (pool_started_) {
    phase_.store(Phase::kExit, std::memory_order_relaxed);
    gate_->arrive_and_wait();  // Release parked workers into the exit check.
    for (auto& t : threads_) {
      t.join();
    }
  }
}

int ShardedSim::current_shard() { return tls_current_shard; }

void ShardedSim::Post(int dst, Time when, std::function<void()> fn) {
  assert(dst >= 0 && dst < shards_);
  const int src = tls_current_shard;
  if (src < 0) {
    // Outside the epoch loop (setup, or between Run calls): the engine is
    // quiescent, schedule straight into the destination simulator.
    assert(!running_);
    Simulator& s = shard(dst);
    s.At(std::max(when, s.now()), std::move(fn));
    return;
  }
  queue(src, dst).Push(Mail{when, std::move(fn)});
}

void ShardedSim::CallOn(int dst, std::function<void()> fn) {
  Post(dst, kAtBarrier, std::move(fn));
}

void ShardedSim::Broadcast(std::function<void(int shard)> fn) {
  for (int d = 0; d < shards_; ++d) {
    const int dst = d;
    CallOn(dst, [fn, dst]() { fn(dst); });
  }
}

Time ShardedSim::now() const {
  Time t = 0;
  for (const auto& s : sims_) {
    t = std::max(t, s->now());
  }
  return t;
}

std::uint64_t ShardedSim::MailInFlight() const {
  std::uint64_t n = 0;
  for (const auto& q : mail_) {
    n += q->pushed() - q->popped();
  }
  return n;
}

void ShardedSim::Run() { EpochLoop(kNever); }

void ShardedSim::RunUntil(Time deadline) {
  EpochLoop(deadline);
  // Advance every clock to the deadline (events <= deadline all fired).
  for (auto& s : sims_) {
    s->RunUntil(deadline);
  }
}

void ShardedSim::RunPhase(int worker) {
  for (int s = worker; s < shards_; s += workers_) {
    tls_current_shard = s;
    sims_[static_cast<std::size_t>(s)]->RunUntil(window_end_);
  }
  tls_current_shard = -1;
}

void ShardedSim::DrainInto(int dst) {
  Simulator& sim = shard(dst);
  const Time barrier_time = window_end_;
  Mail m;
  for (int src = 0; src < shards_; ++src) {
    MailQueue& q = queue(src, dst);
    while (q.Pop(&m)) {
      const Time when = m.when == kAtBarrier ? barrier_time : std::max(m.when, barrier_time);
      sim.At(when, std::move(m.fn));
    }
  }
}

void ShardedSim::DrainPhase(int worker) {
  for (int s = worker; s < shards_; s += workers_) {
    DrainInto(s);
  }
}

void ShardedSim::StartWorkers() {
  if (pool_started_ || workers_ <= 1) {
    return;
  }
  gate_ = std::make_unique<std::barrier<>>(workers_);
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w]() { WorkerMain(w); });
  }
  pool_started_ = true;
}

void ShardedSim::WorkerMain(int worker) {
  for (;;) {
    gate_->arrive_and_wait();  // Park until the coordinator opens a window.
    if (phase_.load(std::memory_order_relaxed) == Phase::kExit) {
      return;
    }
    RunPhase(worker);
    gate_->arrive_and_wait();  // All windows ran; mailboxes now stable.
    DrainPhase(worker);
    gate_->arrive_and_wait();  // Mail integrated; coordinator resumes.
  }
}

void ShardedSim::EpochLoop(Time deadline) {
  assert(!running_);
  const bool bounded = deadline != kNever;
  StartWorkers();
  running_ = true;
  for (;;) {
    // Coordinator section: workers are parked (or W == 1), so reading the
    // shard simulators here is race-free; the barriers order the accesses.
    Time t = kNever;
    bool non_daemon = MailInFlight() > 0;
    for (auto& s : sims_) {
      Time w = 0;
      if (s->NextEventLowerBound(&w)) {
        t = std::min(t, w);
      }
      non_daemon = non_daemon || s->pending_non_daemon() > 0;
    }
    if (!bounded && !non_daemon) {
      break;  // Only daemon housekeeping remains: Run() semantics say stop.
    }
    if (t == kNever || t > deadline) {
      break;  // Nothing left in range.
    }
    // t is a lower bound (coarse wheel levels report slot range starts), so a
    // window may fire nothing; the bounded run then cascades the coarse slot
    // and the next bound is strictly tighter — at most a handful of
    // refinement epochs per idle gap.
    window_end_ = bounded ? std::min(t + window_, deadline) : t + window_;
    if (workers_ == 1) {
      RunPhase(0);
      DrainPhase(0);
    } else {
      gate_->arrive_and_wait();  // Open the window.
      RunPhase(0);
      gate_->arrive_and_wait();  // Run phase done everywhere.
      DrainPhase(0);
      gate_->arrive_and_wait();  // Drain phase done everywhere.
    }
  }
  running_ = false;
}

}  // namespace sim
