// Intra-cell placement: which ShardedSim shard owns which component.
//
// PR 8 parallelized *across* cells (one full testbed per shard). This map is
// the other axis: ONE testbed spread over the shards of one engine — each
// Yoda instance pipeline, backend HTTP server, KV server and client pool is
// assigned a shard, and every cross-component interaction travels as a
// cross-shard message (Network mail or CallOn) instead of a direct call.
//
// The assignment is a pure function of the placement config and the
// component index — never of the worker count — so the shard that executes
// any given event is identical for 1 or 8 workers, which is what keeps trace
// digests byte-identical across worker counts.
//
// Ownership rule: a component's state may only be mutated by an event
// executing on its owning shard. ShardOwnershipAudit (below) asserts this in
// debug builds at the mutation entry points (packet delivery, KV ops,
// instance config writes).

#ifndef SRC_SIM_PLACEMENT_H_
#define SRC_SIM_PLACEMENT_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "src/sim/sharded_sim.h"

namespace sim {

struct IntraPlacement {
  // Shard count of the engine this placement targets.
  int shards = 8;

  // Control plane stays together: the controller replicas, their store
  // client, and the conductor timeline all run here.
  int controller_shard = 0;
  // The L4 fabric (all muxes) is one Node on one shard; every VIP resolves
  // to it. Per-mux sharding is future work (see DESIGN.md section 14).
  int fabric_shard = 0;

  // Per-index overrides (scenario `place` directive). An entry < 0 — or an
  // index past the vector — falls back to the round-robin default.
  std::vector<int> instance_shards;
  std::vector<int> backend_shards;
  std::vector<int> kv_shards;
  std::vector<int> client_shards;
  std::vector<int> proxy_shards;

  // Round-robin with a per-kind offset so small fleets don't all pile onto
  // the low shards (the controller and fabric already live on shard 0).
  int InstanceShard(int i) const { return Pick(instance_shards, i, 0); }
  int BackendShard(int i) const { return Pick(backend_shards, i, 1); }
  int KvShard(int i) const { return Pick(kv_shards, i, 2); }
  int ClientShard(int i) const { return Pick(client_shards, i, 3); }
  int ProxyShard(int i) const { return Pick(proxy_shards, i, 4); }

 private:
  int Pick(const std::vector<int>& overrides, int i, int offset) const {
    const int s = shards > 0 ? shards : 1;
    if (i >= 0 && static_cast<std::size_t>(i) < overrides.size() && overrides[i] >= 0) {
      return overrides[static_cast<std::size_t>(i)] % s;
    }
    return (i + offset) % s;
  }
};

// Debug-build assertion that the executing shard owns the component whose
// state is being mutated. Bind(shard) during placed construction; every
// mutation entry point calls Check(). Unbound (owner -1, the legacy
// single-sim and cell-sharded paths) and outside-the-epoch-loop (setup,
// aggregation — current_shard() == -1) checks pass; only a *worker thread on
// the wrong shard* trips the assert. Release builds compile it away.
class ShardOwnershipAudit {
 public:
  void Bind(int shard) { owner_ = shard; }
  int owner() const { return owner_; }

  void Check() const {
#ifndef NDEBUG
    const int cur = ShardedSim::current_shard();
    assert((cur < 0 || owner_ < 0 || cur == owner_) &&
           "shard ownership violation: component mutated off its owning shard");
#endif
  }

 private:
  int owner_ = -1;
};

}  // namespace sim

#endif  // SRC_SIM_PLACEMENT_H_
