#include "src/sim/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sim {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::LogNormalFromMedian(double median, double sigma) {
  assert(median > 0);
  std::lognormal_distribution<double> dist(std::log(median), sigma);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (std::size_t i = 0; i < n; ++i) {
    cdf_[i] /= total;
  }
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t i) const {
  assert(i < cdf_.size());
  if (i == 0) {
    return cdf_[0];
  }
  return cdf_[i] - cdf_[i - 1];
}

}  // namespace sim
