// Simulated-time primitives.
//
// All simulated time in this project is expressed in integer nanoseconds so
// that event ordering is exact and runs are bit-for-bit reproducible. The
// helpers below make call sites read naturally (e.g. `sim::Msec(600)`).

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace sim {

// A point in simulated time, in nanoseconds since simulation start.
using Time = std::int64_t;

// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration Nsec(std::int64_t n) { return n; }
constexpr Duration Usec(std::int64_t n) { return n * 1'000; }
constexpr Duration Msec(std::int64_t n) { return n * 1'000'000; }
constexpr Duration Sec(std::int64_t n) { return n * 1'000'000'000; }
constexpr Duration Minutes(std::int64_t n) { return n * 60 * 1'000'000'000; }
constexpr Duration Hours(std::int64_t n) { return n * 3600 * 1'000'000'000; }

// Converts a duration to floating-point units for reporting.
constexpr double ToSeconds(Duration d) { return static_cast<double>(d) / 1e9; }
constexpr double ToMillis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMicros(Duration d) { return static_cast<double>(d) / 1e3; }

// Converts floating-point seconds/milliseconds to a Duration, rounding down.
constexpr Duration FromSeconds(double s) { return static_cast<Duration>(s * 1e9); }
constexpr Duration FromMillis(double ms) { return static_cast<Duration>(ms * 1e6); }

}  // namespace sim

#endif  // SRC_SIM_TIME_H_
