// Backend HTTP server (the paper's Apache-on-a-VM backends).
//
// A full TCP endpoint per connection plus an HTTP request loop: parse a
// request, look the object up in the catalog, reply after a configurable
// processing delay, honour keep-alive. It never knows whether it is talking
// to a client, a proxy, or the VIP — with Yoda in front, the peer address is
// always the VIP.

#ifndef SRC_WORKLOAD_HTTP_SERVER_NODE_H_
#define SRC_WORKLOAD_HTTP_SERVER_NODE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/http/parser.h"
#include "src/net/network.h"
#include "src/net/tcp_endpoint.h"
#include "src/sim/placement.h"
#include "src/sim/random.h"
#include "src/tls/tls.h"
#include "src/workload/object_catalog.h"

namespace workload {

struct HttpServerConfig {
  net::IpAddr ip = 0;
  net::Port port = 80;
  sim::Duration processing_delay = sim::Msec(1);
  net::TcpConfig tcp;
  // Non-zero: accept TLS sessions handed over by the LB via session tickets
  // sealed under this fleet-wide service key (§5.2 SSL termination).
  std::uint64_t tls_service_key = 0;
};

struct HttpServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t not_found = 0;
  std::uint64_t bytes_sent = 0;
};

class HttpServerNode : public net::Node {
 public:
  HttpServerNode(sim::Simulator* simulator, net::Network* network, const ObjectCatalog* catalog,
                 std::uint64_t seed, HttpServerConfig config);
  ~HttpServerNode() override;

  net::IpAddr ip() const { return cfg_.ip; }

  void Fail();
  void Recover();
  bool failed() const { return failed_; }
  // Cold restart (Network::RestartNode): connections are gone, server is up.
  void OnColdRestart() override;

  // Per-server tuning (e.g. a deliberately slow replica in mirroring tests).
  void set_processing_delay(sim::Duration d) { cfg_.processing_delay = d; }

  void HandlePacket(const net::Packet& packet) override;

  // Placed testbeds bind this to the backend's owning shard; fail/recover
  // and packet delivery assert in debug builds that they execute there.
  sim::ShardOwnershipAudit& audit() { return audit_; }

  const HttpServerStats& stats() const { return stats_; }
  // Requests served since the last drain (Fig 14 measures per-server share).
  std::uint64_t DrainRequestCounter();

 private:
  sim::ShardOwnershipAudit audit_;

  struct Conn {
    std::unique_ptr<net::TcpEndpoint> ep;
    http::RequestParser parser;
    // TLS session (joined via ticket). Unset on plaintext connections.
    bool tls = false;
    bool tls_ready = false;
    std::uint64_t tls_key = 0;
    tls::RecordReader tls_reader;
    std::uint64_t tls_in_offset = 0;
    std::uint64_t tls_out_offset = 0;
  };

  void Accept(const net::Packet& syn);
  void Serve(net::FiveTuple peer, const http::Request& req);

  sim::Simulator* sim_;
  net::Network* net_;
  const ObjectCatalog* catalog_;
  sim::Rng rng_;
  HttpServerConfig cfg_;
  bool failed_ = false;

  std::unordered_map<net::FiveTuple, std::unique_ptr<Conn>, net::FiveTupleHash> conns_;
  HttpServerStats stats_;
  std::uint64_t window_requests_ = 0;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_HTTP_SERVER_NODE_H_
