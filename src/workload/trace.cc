#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace workload {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

double VipTraceSpec::MaxRate() const {
  return series.empty() ? 0 : *std::max_element(series.begin(), series.end());
}

double VipTraceSpec::AvgRate() const {
  if (series.empty()) {
    return 0;
  }
  return std::accumulate(series.begin(), series.end(), 0.0) /
         static_cast<double>(series.size());
}

double VipTraceSpec::MaxToAvgRatio() const {
  const double avg = AvgRate();
  return avg > 0 ? MaxRate() / avg : 0;
}

double VipTraceSpec::TotalVolume() const {
  return std::accumulate(series.begin(), series.end(), 0.0);
}

double Trace::TotalAtBin(std::size_t bin) const {
  double total = 0;
  for (const VipTraceSpec& v : vips) {
    if (bin < v.series.size()) {
      total += v.series[bin];
    }
  }
  return total;
}

int Trace::TotalRules() const {
  int total = 0;
  for (const VipTraceSpec& v : vips) {
    total += v.rules;
  }
  return total;
}

Trace GenerateTrace(sim::Rng& rng, const TraceConfig& cfg) {
  Trace trace;
  sim::ZipfDistribution popularity(static_cast<std::size_t>(cfg.vips), cfg.zipf_s);

  for (int v = 0; v < cfg.vips; ++v) {
    VipTraceSpec spec;
    spec.id = v;
    const double base =
        cfg.total_average_traffic * popularity.Pmf(static_cast<std::size_t>(v));
    const double amplitude = cfg.min_diurnal +
                             rng.UniformDouble() * (cfg.max_diurnal - cfg.min_diurnal);
    const double phase = rng.UniformDouble();  // Fraction of a day.
    spec.series.resize(static_cast<std::size_t>(cfg.bins));
    for (int b = 0; b < cfg.bins; ++b) {
      const double day_frac = static_cast<double>(b) / static_cast<double>(cfg.bins);
      double rate = base * (1.0 + amplitude * std::sin(2 * kPi * (day_frac - phase)));
      rate *= 1.0 + cfg.noise * (2 * rng.UniformDouble() - 1.0);
      spec.series[static_cast<std::size_t>(b)] = std::max(rate, base * 0.02);
    }
    // A subset of services is bursty (flash events), which is what drives
    // the long max-to-avg tail in Fig 15.
    if (rng.Bernoulli(cfg.bursty_fraction)) {
      for (int k = 0; k < cfg.bursts_per_bursty_vip; ++k) {
        const auto at = static_cast<std::size_t>(rng.UniformInt(0, cfg.bins - 1));
        // Burst magnitudes are skewed low (u^2) so most flash events are
        // modest while a few reach the paper's 50x tail.
        const double u = rng.UniformDouble();
        const double factor =
            cfg.burst_factor_min *
            std::pow(cfg.burst_factor_max / cfg.burst_factor_min, u * u);
        spec.series[at] *= factor;
        if (at + 1 < spec.series.size()) {
          spec.series[at + 1] *= 1.0 + (factor - 1.0) * 0.4;
        }
      }
    }
    const double r = rng.LogNormalFromMedian(static_cast<double>(cfg.median_rules),
                                             cfg.rules_sigma);
    int max_rules = cfg.max_rules;
    if (base > 1.0) {
      max_rules = std::min(max_rules, cfg.hot_vip_max_rules);
    }
    spec.rules = std::clamp(static_cast<int>(r), cfg.min_rules, max_rules);
    trace.vips.push_back(std::move(spec));
  }
  // Most popular first, matching Fig 15's x-axis ordering.
  std::sort(trace.vips.begin(), trace.vips.end(),
            [](const VipTraceSpec& a, const VipTraceSpec& b) {
              return a.TotalVolume() > b.TotalVolume();
            });
  return trace;
}

assign::Problem ProblemForBin(const Trace& trace, std::size_t bin,
                              const BinProblemConfig& cfg) {
  assign::Problem p;
  p.traffic_capacity = cfg.traffic_capacity;
  p.rule_capacity = cfg.rule_capacity;
  p.migration_limit = cfg.migration_limit;
  for (const VipTraceSpec& v : trace.vips) {
    if (bin >= v.series.size()) {
      continue;
    }
    assign::VipSpec spec;
    spec.id = v.id;
    spec.traffic = v.series[bin];
    spec.rules = v.rules;
    const int wanted = static_cast<int>(
        std::ceil(cfg.replication_factor * spec.traffic / cfg.traffic_capacity));
    spec.replicas = std::clamp(wanted, 1, cfg.max_replicas);
    spec.failures = static_cast<int>(std::floor(spec.replicas * cfg.oversubscription));
    if (spec.failures >= spec.replicas) {
      spec.failures = spec.replicas - 1;
    }
    // Keep single-replica VIPs placeable: the post-failure share must fit.
    while (spec.ShareAfterFailures() > cfg.traffic_capacity &&
           spec.replicas < cfg.max_replicas) {
      ++spec.replicas;
    }
    p.vips.push_back(spec);
  }
  return p;
}

}  // namespace workload
