#include "src/workload/http_server_node.h"

#include <utility>

namespace workload {

HttpServerNode::HttpServerNode(sim::Simulator* simulator, net::Network* network,
                               const ObjectCatalog* catalog, std::uint64_t seed,
                               HttpServerConfig config)
    : sim_(simulator), net_(network), catalog_(catalog), rng_(seed), cfg_(config) {
  net_->Attach(cfg_.ip, this);
}

HttpServerNode::~HttpServerNode() = default;

void HttpServerNode::Fail() {
  audit_.Check();
  failed_ = true;
  conns_.clear();
}

void HttpServerNode::Recover() {
  audit_.Check();
  failed_ = false;
}

void HttpServerNode::OnColdRestart() {
  Fail();
  Recover();
}

std::uint64_t HttpServerNode::DrainRequestCounter() {
  const std::uint64_t n = window_requests_;
  window_requests_ = 0;
  return n;
}

void HttpServerNode::HandlePacket(const net::Packet& p) {
  audit_.Check();
  if (failed_ || p.dport != cfg_.port) {
    return;
  }
  const net::FiveTuple peer = p.tuple();
  auto it = conns_.find(peer);
  if (it != conns_.end() && p.syn() && !p.ack_flag()) {
    // A new SYN on a tuple whose previous connection is done (TIME_WAIT or
    // closed): port reuse — accept the new connection.
    const net::TcpState st = it->second->ep->state();
    if (st == net::TcpState::kTimeWait || st == net::TcpState::kClosed ||
        st == net::TcpState::kReset) {
      conns_.erase(it);
      it = conns_.end();
    }
  }
  if (it == conns_.end()) {
    if (p.syn() && !p.ack_flag()) {
      Accept(p);
    } else if (!p.rst()) {
      net_->Send(net::MakeRst(p));  // Unknown connection: kernel answers RST.
    }
    return;
  }
  it->second->ep->HandlePacket(p);
  // Reclaim fully closed connections.
  const net::TcpState st = it->second->ep->state();
  if (st == net::TcpState::kClosed || st == net::TcpState::kReset) {
    conns_.erase(it);
  }
}

void HttpServerNode::Accept(const net::Packet& syn) {
  const net::FiveTuple peer = syn.tuple();
  auto conn = std::make_unique<Conn>();
  auto* c = conn.get();
  conns_[peer] = std::move(conn);
  ++stats_.connections;

  c->ep = std::make_unique<net::TcpEndpoint>(
      sim_, [this](net::Packet p) { net_->Send(std::move(p)); }, cfg_.tcp);
  // Reap the connection once it reaches kClosed. The packet-driven paths
  // (passive close, reset) are reclaimed at the HandlePacket tail, but a
  // server-side active close parks in TIME_WAIT and reaches kClosed from the
  // endpoint's internal timer — no packet ever arrives, so without this hook
  // the Conn (endpoint + parsers + TLS state) leaks for the rest of the run.
  // The erase is deferred one event because on_closed can fire from inside
  // ep->HandlePacket or ep->Close, where destroying the endpoint mid-call
  // would be use-after-free.
  c->ep->set_on_closed([this, peer]() {
    sim_->At(sim_->now(), [this, peer]() {
      auto it = conns_.find(peer);
      if (it == conns_.end()) {
        return;
      }
      const net::TcpState st = it->second->ep->state();
      if (st == net::TcpState::kClosed || st == net::TcpState::kReset) {
        conns_.erase(it);
      }
    });
  });
  c->ep->set_on_data([this, peer](std::string_view bytes) {
    auto it = conns_.find(peer);
    if (it == conns_.end()) {
      return;
    }
    Conn& conn_ref = *it->second;
    std::string_view http_bytes = bytes;
    std::string decrypted;
    if (cfg_.tls_service_key != 0) {
      // TLS-terminated sessions arrive as [session ticket][appdata...]; the
      // very first record tells us whether this connection is TLS at all.
      conn_ref.tls_reader.Feed(bytes);
      decrypted.clear();
      while (auto record = conn_ref.tls_reader.Next()) {
        if (record->type == tls::RecordType::kSessionTicket && !conn_ref.tls_ready) {
          auto key = tls::OpenTicket(record->payload, cfg_.tls_service_key);
          if (!key) {
            conn_ref.ep->Abort();  // Forged or corrupted ticket.
            return;
          }
          conn_ref.tls = true;
          conn_ref.tls_ready = true;
          conn_ref.tls_key = *key;
        } else if (record->type == tls::RecordType::kApplicationData &&
                   conn_ref.tls_ready) {
          decrypted += tls::Crypt(conn_ref.tls_key, conn_ref.tls_in_offset, record->payload);
          conn_ref.tls_in_offset += record->payload.size();
        }
      }
      if (!conn_ref.tls && conn_ref.tls_in_offset == 0 && decrypted.empty() &&
          !conn_ref.tls_ready) {
        // No complete record yet and not a known TLS session: if the bytes
        // do not look like a record, fall through as plaintext.
        if (!bytes.empty() && static_cast<std::uint8_t>(bytes[0]) >= 1 &&
            static_cast<std::uint8_t>(bytes[0]) <= 5) {
          return;  // Wait for the full record.
        }
      }
      if (conn_ref.tls_ready) {
        http_bytes = decrypted;
      }
    }
    conn_ref.parser.Feed(http_bytes);
    // Pipelined connections can complete several requests per segment;
    // serve them in arrival order (responses are scheduled FIFO).
    while (conn_ref.parser.status() == http::ParseStatus::kComplete) {
      const http::Request req = conn_ref.parser.TakeRequest();
      Serve(peer, req);
      auto again = conns_.find(peer);
      if (again == conns_.end()) {
        break;
      }
    }
  });
  c->ep->AcceptFrom(syn, static_cast<std::uint32_t>(rng_.UniformInt(1, 1u << 30)));
}

void HttpServerNode::Serve(net::FiveTuple peer, const http::Request& req) {
  ++stats_.requests;
  ++window_requests_;
  sim_->After(cfg_.processing_delay, [this, peer, req]() {
    auto it = conns_.find(peer);
    if (it == conns_.end() || failed_) {
      return;
    }
    net::TcpEndpoint* ep = it->second->ep.get();
    http::Response resp;
    const WebObject* obj = catalog_ == nullptr ? nullptr : catalog_->Find(req.url);
    if (obj != nullptr) {
      resp = http::MakeOk(catalog_->BodyFor(*obj), req.version);
      resp.SetHeader("content-type", obj->content_type);
    } else if (catalog_ == nullptr) {
      // No catalog: echo service used by unit tests.
      resp = http::MakeOk("echo:" + req.url, req.version);
    } else {
      ++stats_.not_found;
      resp = http::MakeNotFound(req.version);
    }
    const bool keep_alive = req.KeepAlive();
    resp.SetHeader("connection", keep_alive ? "keep-alive" : "close");
    std::string wire = resp.Serialize();
    Conn& conn_ref = *it->second;
    if (conn_ref.tls_ready) {
      // Encrypt the response into an application-data record.
      std::string sealed = tls::Crypt(
          conn_ref.tls_key, tls::kServerDirectionOffset + conn_ref.tls_out_offset, wire);
      conn_ref.tls_out_offset += wire.size();
      wire = tls::EncodeRecord({tls::RecordType::kApplicationData, std::move(sealed)});
    }
    stats_.bytes_sent += wire.size();
    ep->Send(wire);
    if (!keep_alive) {
      ep->Close();
    }
  });
}

}  // namespace workload
