#include "src/workload/scenario.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <functional>
#include <memory>
#include <ostream>
#include <sstream>

#include "src/sim/sharded_sim.h"

namespace workload {
namespace {

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    out.push_back(tok);
  }
  return out;
}

bool ParseInt(const std::string& s, long long* out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && p == s.data() + s.size();
}

void Fail(std::string* error, int line_no, const std::string& msg) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + msg;
  }
}

// Joins tokens [from..) back into one string (rule specs contain spaces).
std::string JoinFrom(const std::vector<std::string>& toks, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < toks.size(); ++i) {
    if (i > from) {
      out += " ";
    }
    out += toks[i];
  }
  return out;
}

// Applies one non-load timeline action to a testbed. Shared by the legacy
// single-simulator path (one testbed, fired at the scripted instant) and the
// cell-sharded path (fired once per cell at the first epoch barrier after the
// scripted instant). `ctl` is the control-plane handle — under HA, whichever
// replica currently acts as leader.
void ApplyControlEvent(Testbed& tb, const Scenario& scenario, const ScenarioEvent& ev,
                       yoda::Controller* ctl,
                       const std::function<void(const std::string&)>& say) {
  long long idx = 0;
  if (ev.action == "fail-instance" && !ev.args.empty()) {
    std::from_chars(ev.args[0].data(), ev.args[0].data() + ev.args[0].size(), idx);
    say("FAIL instance " + ev.args[0]);
    tb.FailInstance(static_cast<int>(idx));
  } else if (ev.action == "recover-instance" && !ev.args.empty()) {
    std::from_chars(ev.args[0].data(), ev.args[0].data() + ev.args[0].size(), idx);
    say("recover instance " + ev.args[0]);
    tb.RecoverInstance(static_cast<int>(idx));
  } else if (ev.action == "fail-backend" && !ev.args.empty()) {
    std::from_chars(ev.args[0].data(), ev.args[0].data() + ev.args[0].size(), idx);
    say("FAIL backend " + ev.args[0]);
    tb.FailBackend(static_cast<int>(idx));
  } else if (ev.action == "recover-backend" && !ev.args.empty()) {
    std::from_chars(ev.args[0].data(), ev.args[0].data() + ev.args[0].size(), idx);
    say("recover backend " + ev.args[0]);
    tb.RecoverBackend(static_cast<int>(idx));
  } else if (ev.action == "fail-kv" && !ev.args.empty()) {
    std::from_chars(ev.args[0].data(), ev.args[0].data() + ev.args[0].size(), idx);
    say("FAIL kv server " + ev.args[0]);
    tb.FailKvServer(static_cast<int>(idx));
  } else if (ev.action == "crash-controller" && !ev.args.empty()) {
    std::from_chars(ev.args[0].data(), ev.args[0].data() + ev.args[0].size(), idx);
    say("CRASH controller " + ev.args[0]);
    tb.CrashController(static_cast<int>(idx));
  } else if (ev.action == "crash-leader") {
    for (int i = 0; i < tb.controller_count(); ++i) {
      yoda::Controller* c = tb.ControllerAt(i);
      if (!c->crashed() && c->ActingLeader()) {
        say("CRASH leader controller " + std::to_string(i));
        tb.CrashController(i);
        break;
      }
    }
  } else if (ev.action == "restart-controller" && !ev.args.empty()) {
    std::from_chars(ev.args[0].data(), ev.args[0].data() + ev.args[0].size(), idx);
    say("restart controller " + ev.args[0]);
    tb.RestartController(static_cast<int>(idx));
  } else if (ev.action == "add-instance") {
    if (!tb.spares.empty()) {
      say("activating spare instance");
      ctl->AddInstance(tb.spares.back().get());
      // Hand ownership bookkeeping stays in the testbed; pools follow.
      std::vector<net::IpAddr> pool;
      for (auto* inst : ctl->ActiveInstances()) {
        pool.push_back(inst->ip());
      }
      for (const auto& def : scenario.vips) {
        tb.fabric.SetVipPoolStaggered(def.vip, pool, sim::Msec(50));
      }
    }
  } else if (ev.action == "assign") {
    say("running many-to-many assignment round");
    ctl->RunAssignmentRoundNow();
  } else if (ev.action == "update-rules" && ev.args.size() >= 2) {
    auto vip = ParseIp(ev.args[0]);
    auto rule = rules::ParseRule(JoinFrom(ev.args, 1));
    if (vip && rule) {
      say("update rules for " + ev.args[0]);
      ctl->UpdateVipRules(*vip, {*rule});
    }
  } else if (ev.action == "store-mode" && ev.args.size() >= 2) {
    auto vip = ParseIp(ev.args[0]);
    const std::string& mode = ev.args[1];
    if (vip && (mode == "stateful" || mode == "stateless")) {
      say("store mode " + mode + " for " + ev.args[0]);
      ctl->SetStoreMode(*vip, mode == "stateless" ? yoda::StoreMode::kStateless
                                                  : yoda::StoreMode::kStateful);
    }
  }
}

}  // namespace

std::optional<sim::Duration> ParseDuration(const std::string& token) {
  std::size_t i = 0;
  while (i < token.size() && (std::isdigit(static_cast<unsigned char>(token[i])) != 0)) {
    ++i;
  }
  if (i == 0) {
    return std::nullopt;
  }
  long long value = 0;
  if (!ParseInt(token.substr(0, i), &value)) {
    return std::nullopt;
  }
  const std::string unit = token.substr(i);
  if (unit == "ms") {
    return sim::Msec(value);
  }
  if (unit == "s" || unit.empty()) {
    return sim::Sec(value);
  }
  if (unit == "m") {
    return sim::Minutes(value);
  }
  if (unit == "us") {
    return sim::Usec(value);
  }
  return std::nullopt;
}

std::optional<net::IpAddr> ParseIp(const std::string& token) {
  std::uint32_t ip = 0;
  std::size_t start = 0;
  for (int quad = 0; quad < 4; ++quad) {
    const std::size_t dot = token.find('.', start);
    const bool last = quad == 3;
    if (last != (dot == std::string::npos)) {
      return std::nullopt;
    }
    const std::string part = token.substr(start, last ? std::string::npos : dot - start);
    long long v = 0;
    if (!ParseInt(part, &v) || v < 0 || v > 255) {
      return std::nullopt;
    }
    ip = (ip << 8) | static_cast<std::uint32_t>(v);
    start = dot + 1;
  }
  return ip;
}

std::optional<Scenario> ParseScenario(const std::string& text, std::string* error) {
  Scenario sc;
  sc.testbed.yoda_instances = 2;
  sc.testbed.backends = 3;

  // `store-mode <mode>` with no VIP retroactively covers every VIP already
  // defined and seeds the default for VIPs defined after it.
  yoda::StoreMode default_store_mode = yoda::StoreMode::kStateful;

  auto find_vip = [&sc](net::IpAddr vip) -> Scenario::VipDef* {
    for (auto& def : sc.vips) {
      if (def.vip == vip) {
        return &def;
      }
    }
    return nullptr;
  };

  std::stringstream ss(text);
  std::string line;
  int line_no = 0;
  while (std::getline(ss, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    auto toks = Tokens(line);
    if (toks.empty()) {
      continue;
    }
    const std::string& cmd = toks[0];

    auto need = [&](std::size_t n) {
      if (toks.size() < n + 1) {
        Fail(error, line_no, cmd + " needs " + std::to_string(n) + " argument(s)");
        return false;
      }
      return true;
    };

    long long n = 0;
    if (cmd == "threads") {
      if (!need(1) || !ParseInt(toks[1], &n) || n < 1) {
        Fail(error, line_no, "threads needs a count >= 1");
        return std::nullopt;
      }
      sc.threads = static_cast<int>(n);
    } else if (cmd == "intra-threads") {
      if (!need(1) || !ParseInt(toks[1], &n) || n < 1) {
        Fail(error, line_no, "intra-threads needs a count >= 1");
        return std::nullopt;
      }
      sc.intra_threads = static_cast<int>(n);
    } else if (cmd == "place") {
      // place <instance|backend|kv|client|proxy> <idx> <shard>
      // place <controller|fabric> <shard>
      if (!need(2)) {
        return std::nullopt;
      }
      const std::string& kind = toks[1];
      long long a = 0;
      long long b = 0;
      if (kind == "controller" || kind == "fabric") {
        if (!ParseInt(toks[2], &a) || a < 0) {
          Fail(error, line_no, "place " + kind + " needs a shard >= 0");
          return std::nullopt;
        }
        (kind == "controller" ? sc.placement.controller_shard
                              : sc.placement.fabric_shard) = static_cast<int>(a);
      } else {
        std::vector<int>* overrides = kind == "instance" ? &sc.placement.instance_shards
                                      : kind == "backend" ? &sc.placement.backend_shards
                                      : kind == "kv"      ? &sc.placement.kv_shards
                                      : kind == "client"  ? &sc.placement.client_shards
                                      : kind == "proxy"   ? &sc.placement.proxy_shards
                                                          : nullptr;
        if (overrides == nullptr) {
          Fail(error, line_no,
               "place kind must be instance|backend|kv|client|proxy|controller|fabric");
          return std::nullopt;
        }
        if (!need(3) || !ParseInt(toks[2], &a) || !ParseInt(toks[3], &b) || a < 0 || b < 0) {
          Fail(error, line_no, "usage: place " + kind + " <idx> <shard>");
          return std::nullopt;
        }
        if (static_cast<std::size_t>(a) >= overrides->size()) {
          overrides->resize(static_cast<std::size_t>(a) + 1, -1);
        }
        (*overrides)[static_cast<std::size_t>(a)] = static_cast<int>(b);
      }
    } else if (cmd == "seed" || cmd == "instances" || cmd == "spares" || cmd == "backends" ||
        cmd == "kv-servers" || cmd == "kv-replicas" || cmd == "clients" || cmd == "muxes" ||
        cmd == "controllers") {
      if (!need(1) || !ParseInt(toks[1], &n) || n < 0) {
        Fail(error, line_no, "bad count for " + cmd);
        return std::nullopt;
      }
      if (cmd == "seed") {
        sc.testbed.seed = static_cast<std::uint64_t>(n);
      } else if (cmd == "instances") {
        sc.testbed.yoda_instances = static_cast<int>(n);
      } else if (cmd == "spares") {
        sc.testbed.spare_instances = static_cast<int>(n);
      } else if (cmd == "backends") {
        sc.testbed.backends = static_cast<int>(n);
      } else if (cmd == "kv-servers") {
        sc.testbed.kv_servers = static_cast<int>(n);
      } else if (cmd == "kv-replicas") {
        sc.testbed.kv_replicas = static_cast<int>(n);
      } else if (cmd == "clients") {
        sc.testbed.clients = static_cast<int>(n);
      } else if (cmd == "controllers") {
        // >1 controller replicas switches the control plane to HA mode
        // (store-backed leader lease, durable journal).
        sc.testbed.controllers = static_cast<int>(n);
        sc.testbed.controller_ha = n > 1;
      } else {
        sc.testbed.muxes = static_cast<int>(n);
      }
    } else if (cmd == "vip") {
      if (!need(1)) {
        return std::nullopt;
      }
      auto vip = ParseIp(toks[1]);
      if (!vip) {
        Fail(error, line_no, "bad vip address: " + toks[1]);
        return std::nullopt;
      }
      sc.vips.push_back(Scenario::VipDef{*vip, {}, std::nullopt, 0, default_store_mode});
    } else if (cmd == "rule") {
      if (!need(2)) {
        return std::nullopt;
      }
      auto vip = ParseIp(toks[1]);
      Scenario::VipDef* def = vip ? find_vip(*vip) : nullptr;
      if (def == nullptr) {
        Fail(error, line_no, "rule for undefined vip: " + toks[1]);
        return std::nullopt;
      }
      std::string rule_err;
      auto rule = rules::ParseRule(JoinFrom(toks, 2), &rule_err);
      if (!rule) {
        Fail(error, line_no, "bad rule: " + rule_err);
        return std::nullopt;
      }
      def->vip_rules.push_back(*rule);
    } else if (cmd == "tls") {
      // tls <vip> cert <blob> key <n>
      if (!need(5) || toks[2] != "cert" || toks[4] != "key") {
        Fail(error, line_no, "usage: tls <vip> cert <blob> key <n>");
        return std::nullopt;
      }
      auto vip = ParseIp(toks[1]);
      Scenario::VipDef* def = vip ? find_vip(*vip) : nullptr;
      if (def == nullptr || !ParseInt(toks[5], &n)) {
        Fail(error, line_no, "bad tls directive");
        return std::nullopt;
      }
      def->tls_cert = toks[3];
      def->tls_key = static_cast<std::uint64_t>(n);
    } else if (cmd == "store-mode") {
      // store-mode <stateful|stateless>          (every VIP, defined or future)
      // store-mode <vip> <stateful|stateless>    (one VIP)
      auto parse_mode = [](const std::string& tok) -> std::optional<yoda::StoreMode> {
        if (tok == "stateful") {
          return yoda::StoreMode::kStateful;
        }
        if (tok == "stateless") {
          return yoda::StoreMode::kStateless;
        }
        return std::nullopt;
      };
      if (!need(1)) {
        return std::nullopt;
      }
      if (auto mode = parse_mode(toks[1])) {
        default_store_mode = *mode;
        for (auto& def : sc.vips) {
          def.store_mode = *mode;
        }
      } else {
        auto vip = ParseIp(toks[1]);
        Scenario::VipDef* def = vip ? find_vip(*vip) : nullptr;
        std::optional<yoda::StoreMode> vip_mode =
            toks.size() > 2 ? parse_mode(toks[2]) : std::nullopt;
        if (def == nullptr || !vip_mode) {
          Fail(error, line_no, "usage: store-mode [<vip>] <stateful|stateless>");
          return std::nullopt;
        }
        def->store_mode = *vip_mode;
      }
    } else if (cmd == "at") {
      if (!need(2)) {
        return std::nullopt;
      }
      auto when = ParseDuration(toks[1]);
      if (!when) {
        Fail(error, line_no, "bad time: " + toks[1]);
        return std::nullopt;
      }
      ScenarioEvent ev;
      ev.at = *when;
      ev.action = toks[2];
      ev.args.assign(toks.begin() + 3, toks.end());
      ev.raw = JoinFrom(toks, 3);
      sc.events.push_back(std::move(ev));
    } else if (cmd == "run-until") {
      if (!need(1)) {
        return std::nullopt;
      }
      auto until = ParseDuration(toks[1]);
      if (!until) {
        Fail(error, line_no, "bad time: " + toks[1]);
        return std::nullopt;
      }
      sc.run_until = *until;
    } else {
      Fail(error, line_no, "unknown directive: " + cmd);
      return std::nullopt;
    }
  }
  if (sc.vips.empty()) {
    Fail(error, 0, "scenario defines no vip");
    return std::nullopt;
  }
  if (sc.threads > 0 && sc.intra_threads > 0) {
    Fail(error, 0, "threads and intra-threads are mutually exclusive");
    return std::nullopt;
  }
  if (sc.intra_threads > 0) {
    for (const ScenarioEvent& ev : sc.events) {
      // Assignment rollouts aggregate per-instance counters with direct
      // cross-shard reads; unsupported placed (see TestbedConfig::engine).
      if (ev.action == "assign") {
        Fail(error, 0, "assign is not supported with intra-threads");
        return std::nullopt;
      }
    }
  }
  return sc;
}

namespace {

// Per-cell run state for the sharded path. Everything here is touched only by
// the cell's owning shard (load loops, counters) or by the coordinator while
// the engine is idle (setup, aggregation) — never both at once.
struct CellState {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<sim::Rng> rng;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  sim::Histogram latency_ms;
  std::vector<std::shared_ptr<std::function<void()>>> load_loops;
};

// `threads N` path: the experiment replicated into kScenarioCells independent
// cells — one full testbed (own fleet, VIPs, clients, faults) per ShardedSim
// shard, with distinct per-cell seeds — executed by N worker threads. The
// workload is cell-local; the timeline is conducted from shard 0, which fans
// each control event out to every cell over cross-shard mail. Cells apply it
// at the first epoch barrier after the scripted time, an instant that depends
// only on event timestamps — so the per-cell traces (and their concatenation,
// the report) are byte-identical for any N.
ScenarioReport RunScenarioSharded(const Scenario& scenario, std::ostream* log,
                                  const std::function<void(Testbed&)>& after_run) {
  ScenarioReport report;
  report.cells = kScenarioCells;

  sim::ShardedSim::Config ecfg;
  ecfg.shards = kScenarioCells;
  ecfg.workers = scenario.threads;
  sim::ShardedSim engine(ecfg);
  if (log != nullptr) {
    *log << "  [cell-sharded] " << kScenarioCells << " cells on " << engine.workers()
         << " worker thread(s), window " << engine.window() << " ticks\n";
  }

  std::vector<std::unique_ptr<CellState>> cells;
  for (int c = 0; c < kScenarioCells; ++c) {
    TestbedConfig cfg = scenario.testbed;
    cfg.external_sim = &engine.shard(c);
    // Distinct trial per cell; a function of the scenario seed and the cell
    // index only, never of the worker count.
    cfg.seed = scenario.testbed.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(c);
    for (const auto& def : scenario.vips) {
      if (def.tls_cert) {
        cfg.server_template.tls_service_key = def.tls_key;
      }
    }
    auto cell = std::make_unique<CellState>();
    cell->tb = std::make_unique<Testbed>(cfg);
    cell->rng = std::make_unique<sim::Rng>(cfg.seed ^ 0x5ce9a210ULL);
    cells.push_back(std::move(cell));
  }

  auto ctl = [](Testbed& tb) -> yoda::Controller* {
    if (!tb.cfg.controller_ha) {
      return tb.controller.get();
    }
    yoda::Controller* leader = tb.LeaderController();
    return leader != nullptr ? leader : tb.controller.get();
  };

  // Setup runs on the coordinator while the engine is idle, so touching the
  // shard simulators directly is race-free.
  for (auto& cell : cells) {
    Testbed& tb = *cell->tb;
    if (tb.cfg.controller_ha) {
      tb.StartAllControllers();
      tb.AwaitLeader();
    }
    for (const auto& def : scenario.vips) {
      ctl(tb)->DefineVip(def.vip, 80, def.vip_rules);
      if (def.store_mode != yoda::StoreMode::kStateful) {
        ctl(tb)->SetStoreMode(def.vip, def.store_mode);
      }
      if (def.tls_cert) {
        for (auto& inst : tb.instances) {
          inst->InstallVipTls(def.vip, *def.tls_cert, def.tls_key);
        }
        for (auto& inst : tb.spares) {
          inst->InstallVipTls(def.vip, *def.tls_cert, def.tls_key);
        }
      }
    }
    if (!tb.cfg.controller_ha) {
      tb.controller->Start();
    }
  }
  // HA leader election advances cell clocks unevenly (AwaitLeader runs each
  // cell's simulator on its own); align them so every shard enters the epoch
  // loop at one common instant.
  sim::Time t0 = 0;
  for (auto& cell : cells) {
    t0 = std::max(t0, cell->tb->simulator->now());
  }
  if (t0 > 0) {
    for (auto& cell : cells) {
      cell->tb->simulator->RunUntil(t0);
    }
  }

  // Cells run concurrently, so per-event narration from worker threads would
  // race on the log stream; the cells stay quiet and the aggregate report
  // carries the results.
  const std::function<void(const std::string&)> quiet = [](const std::string&) {};

  auto start_load = [](CellState& cell, net::IpAddr vip, double rate, sim::Duration duration,
                       bool use_tls) {
    const sim::Time end = cell.tb->simulator->now() + duration;
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_tick = tick;
    CellState* cs = &cell;
    *tick = [cs, vip, rate, end, use_tls, weak_tick]() {
      Testbed& tb = *cs->tb;
      if (tb.simulator->now() > end) {
        return;
      }
      sim::Rng& rng = *cs->rng;
      auto* client = tb.clients[static_cast<std::size_t>(rng.UniformInt(
                                    0, static_cast<std::int64_t>(tb.clients.size()) - 1))].get();
      const auto& obj = tb.catalog->objects()[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(tb.catalog->objects().size()) - 1))];
      FetchOptions opts;
      opts.use_tls = use_tls;
      client->FetchObject(vip, 80, obj.url, opts, [cs](const FetchResult& r) {
        if (r.ok) {
          ++cs->ok;
          cs->latency_ms.Add(sim::ToMillis(r.latency));
        } else {
          ++cs->failed;
        }
      });
      if (auto self = weak_tick.lock()) {
        tb.simulator->After(sim::FromSeconds(rng.Exponential(1.0 / rate)), *self);
      }
    };
    cs->load_loops.push_back(tick);
    (*tick)();
  };

  sim::Simulator& conductor = engine.shard(0);
  for (const ScenarioEvent& ev : scenario.events) {
    if (ev.action == "load" && ev.args.size() >= 5) {
      auto vip = ParseIp(ev.args[0]);
      const double rate = std::strtod(ev.args[2].c_str(), nullptr);
      auto duration = ParseDuration(ev.args[4]);
      const bool use_tls = ev.args.size() > 5 && ev.args[5] == "tls";
      if (!vip || !duration || rate <= 0) {
        continue;
      }
      // The workload is cell-local: each cell's generator starts on its own
      // shard at the scripted time, driven by the cell's own RNG.
      for (auto& cellp : cells) {
        CellState* cs = cellp.get();
        sim::Simulator& s = *cs->tb->simulator;
        s.At(std::max(ev.at, s.now()),
             [cs, vip = *vip, rate, duration = *duration, use_tls, &start_load]() {
               start_load(*cs, vip, rate, duration, use_tls);
             });
      }
    } else {
      // Control events are conducted from shard 0: at the scripted time the
      // conductor fans the action out over cross-shard mail, and each cell
      // applies it at its next epoch barrier — a bounded <= window() after
      // ev.at, at an instant identical for any worker count.
      conductor.At(std::max(ev.at, conductor.now()), [&engine, &cells, &scenario, &ctl, &quiet,
                                                      ev]() {
        for (int c = 0; c < kScenarioCells; ++c) {
          Testbed* tbp = cells[static_cast<std::size_t>(c)]->tb.get();
          engine.CallOn(c, [tbp, &scenario, &ctl, &quiet, ev]() {
            ApplyControlEvent(*tbp, scenario, ev, ctl(*tbp), quiet);
          });
        }
      });
    }
  }

  if (scenario.run_until > 0) {
    engine.RunUntil(scenario.run_until);
  } else {
    engine.Run();
  }

  for (int c = 0; c < kScenarioCells; ++c) {
    CellState& cell = *cells[static_cast<std::size_t>(c)];
    Testbed& tb = *cell.tb;
    report.requests_ok += cell.ok;
    report.requests_failed += cell.failed;
    report.latency_ms.MergeFrom(cell.latency_ms);
    for (auto& inst : tb.instances) {
      report.takeovers +=
          inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
      report.reswitches += inst->stats().reswitches;
    }
    for (auto& inst : tb.spares) {
      report.takeovers +=
          inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
    }
    report.failures_detected += tb.controller->detected_failures();
    for (const auto& evt : tb.controller->events()) {
      report.controller_events.push_back(evt);
    }
    const std::string marker = "{\"cell\":" + std::to_string(c) + "}\n";
    report.metrics_table += "--- cell " + std::to_string(c) + " ---\n" + tb.metrics.TextTable();
    report.metrics_jsonl += marker + tb.metrics.JsonLines();
    std::ostringstream traces;
    tb.flight.ExportJsonLines(traces);
    report.traces_jsonl += marker + traces.str();
  }
  if (after_run) {
    for (auto& cell : cells) {
      after_run(*cell->tb);
    }
  }
  return report;
}

// `intra-threads N` path: ONE testbed spread over the kScenarioCells shards
// of a single engine — every instance, backend, KV server and client on its
// owning shard per the scenario's placement — executed by N worker threads.
// Load is generated per client ON the client's shard (each client loop has
// its own RNG, a function of the scenario seed and client index only);
// control events are conducted from the controller's shard; cross-component
// traffic rides the shard-aware network and cross-shard calls. Results merge
// in fixed (client, then shard) order, so the report is byte-identical for
// any N.
ScenarioReport RunScenarioIntra(const Scenario& scenario, std::ostream* log,
                                const std::function<void(Testbed&)>& after_run) {
  ScenarioReport report;
  report.cells = 1;  // One cell — sharded on the inside.

  sim::ShardedSim::Config ecfg;
  ecfg.shards = kScenarioCells;
  ecfg.workers = scenario.intra_threads;
  sim::ShardedSim engine(ecfg);
  if (log != nullptr) {
    *log << "  [intra-cell] 1 testbed over " << kScenarioCells << " shards on "
         << engine.workers() << " worker thread(s), window " << engine.window()
         << " ticks\n";
  }

  TestbedConfig cfg = scenario.testbed;
  cfg.engine = &engine;
  cfg.placement = scenario.placement;
  cfg.placement.shards = kScenarioCells;
  for (const auto& def : scenario.vips) {
    if (def.tls_cert) {
      cfg.server_template.tls_service_key = def.tls_key;
    }
  }
  Testbed tb(cfg);

  auto ctl = [&tb]() -> yoda::Controller* {
    if (!tb.cfg.controller_ha) {
      return tb.controller.get();
    }
    yoda::Controller* leader = tb.LeaderController();
    return leader != nullptr ? leader : tb.controller.get();
  };

  // Setup runs on the coordinator while the engine is idle, so cross-shard
  // construction and config pushes are race-free.
  if (tb.cfg.controller_ha) {
    tb.StartAllControllers();
    tb.AwaitLeader();
  }
  for (const auto& def : scenario.vips) {
    ctl()->DefineVip(def.vip, 80, def.vip_rules);
    if (def.store_mode != yoda::StoreMode::kStateful) {
      ctl()->SetStoreMode(def.vip, def.store_mode);
    }
    if (def.tls_cert) {
      for (auto& inst : tb.instances) {
        inst->InstallVipTls(def.vip, *def.tls_cert, def.tls_key);
      }
      for (auto& inst : tb.spares) {
        inst->InstallVipTls(def.vip, *def.tls_cert, def.tls_key);
      }
    }
  }
  if (!tb.cfg.controller_ha) {
    tb.controller->Start();
  }

  // Per-client load state, owned and mutated only by the client's shard
  // (FetchObject and its callback both run there).
  struct ClientLoad {
    explicit ClientLoad(std::uint64_t seed) : rng(seed) {}
    sim::Rng rng;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    sim::Histogram latency_ms;
    std::vector<std::shared_ptr<std::function<void()>>> loops;
  };
  std::vector<std::unique_ptr<ClientLoad>> loads;
  for (std::size_t i = 0; i < tb.clients.size(); ++i) {
    loads.push_back(std::make_unique<ClientLoad>(
        cfg.seed ^ (0xC11E47ULL + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i))));
  }

  auto start_client_load = [&tb](ClientLoad* cl, BrowserClient* client, net::IpAddr vip,
                                 double rate, sim::Duration duration, bool use_tls) {
    sim::Simulator* csim = tb.SimFor(tb.OwnerShardOf(client->ip()));
    const sim::Time end = csim->now() + duration;
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_tick = tick;
    *tick = [&tb, cl, client, csim, vip, rate, end, use_tls, weak_tick]() {
      if (csim->now() > end) {
        return;
      }
      const auto& objects = tb.catalog->objects();  // Immutable after setup.
      const auto& obj = objects[static_cast<std::size_t>(
          cl->rng.UniformInt(0, static_cast<std::int64_t>(objects.size()) - 1))];
      FetchOptions opts;
      opts.use_tls = use_tls;
      client->FetchObject(vip, 80, obj.url, opts, [cl](const FetchResult& r) {
        if (r.ok) {
          ++cl->ok;
          cl->latency_ms.Add(sim::ToMillis(r.latency));
        } else {
          ++cl->failed;
        }
      });
      if (auto self = weak_tick.lock()) {
        csim->After(sim::FromSeconds(cl->rng.Exponential(1.0 / rate)), *self);
      }
    };
    cl->loops.push_back(tick);
    (*tick)();
  };

  // Worker threads must not narrate into the shared log stream.
  const std::function<void(const std::string&)> quiet = [](const std::string&) {};

  // Conduct control events from the controller's shard: the controller, the
  // fault plane and this timeline are co-located, so every ApplyControlEvent
  // mutation is either shard-local or routed by the testbed/fabric hooks.
  sim::Simulator& conductor = engine.shard(cfg.placement.controller_shard);
  for (const ScenarioEvent& ev : scenario.events) {
    if (ev.action == "load" && ev.args.size() >= 5) {
      auto vip = ParseIp(ev.args[0]);
      const double rate = std::strtod(ev.args[2].c_str(), nullptr);
      auto duration = ParseDuration(ev.args[4]);
      const bool use_tls = ev.args.size() > 5 && ev.args[5] == "tls";
      if (!vip || !duration || rate <= 0) {
        continue;
      }
      // The scripted rate is the aggregate; each client generates its share
      // on its own shard with its own RNG.
      const double per_client = rate / static_cast<double>(tb.clients.size());
      for (std::size_t i = 0; i < tb.clients.size(); ++i) {
        ClientLoad* cl = loads[i].get();
        BrowserClient* client = tb.clients[i].get();
        sim::Simulator* csim = tb.SimFor(tb.OwnerShardOf(client->ip()));
        csim->At(std::max(ev.at, csim->now()),
                 [cl, client, vip = *vip, per_client, duration = *duration, use_tls,
                  &start_client_load]() {
                   start_client_load(cl, client, vip, per_client, duration, use_tls);
                 });
      }
    } else {
      conductor.At(std::max(ev.at, conductor.now()), [&tb, &scenario, &ctl, &quiet, ev]() {
        ApplyControlEvent(tb, scenario, ev, ctl(), quiet);
      });
    }
  }

  if (scenario.run_until > 0) {
    engine.RunUntil(scenario.run_until);
  } else {
    engine.Run();
  }

  // Merge: per-client tallies in client order, then the per-shard
  // observability lanes in shard order — both fixed, worker-count-invariant.
  for (auto& cl : loads) {
    report.requests_ok += cl->ok;
    report.requests_failed += cl->failed;
    report.latency_ms.MergeFrom(cl->latency_ms);
  }
  for (auto& inst : tb.instances) {
    report.takeovers +=
        inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
    report.reswitches += inst->stats().reswitches;
  }
  for (auto& inst : tb.spares) {
    report.takeovers +=
        inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
  }
  report.failures_detected = tb.controller->detected_failures();
  report.controller_events = tb.controller->events();
  for (int s = 0; s < tb.lane_count(); ++s) {
    const std::string marker = "{\"shard\":" + std::to_string(s) + "}\n";
    report.metrics_table +=
        "--- shard " + std::to_string(s) + " ---\n" + tb.metrics_lane(s).TextTable();
    report.metrics_jsonl += marker + tb.metrics_lane(s).JsonLines();
    std::ostringstream traces;
    tb.flight_lane(s).ExportJsonLines(traces);
    report.traces_jsonl += marker + traces.str();
  }
  if (after_run) {
    after_run(tb);
  }
  return report;
}

}  // namespace

ScenarioReport RunScenario(const Scenario& scenario, std::ostream* log,
                           const std::function<void(Testbed&)>& after_run) {
  if (scenario.intra_threads > 0) {
    return RunScenarioIntra(scenario, log, after_run);
  }
  if (scenario.threads > 0) {
    return RunScenarioSharded(scenario, log, after_run);
  }
  TestbedConfig cfg = scenario.testbed;
  for (const auto& def : scenario.vips) {
    if (def.tls_cert) {
      cfg.server_template.tls_service_key = def.tls_key;
    }
  }
  Testbed tb(cfg);
  ScenarioReport report;
  auto say = [log, &tb](const std::string& msg) {
    if (log != nullptr) {
      *log << "  [" << sim::FormatDouble(sim::ToMillis(tb.sim.now()), 0) << " ms] " << msg
           << "\n";
    }
  };

  // Control-plane handle: with HA the mutating APIs must go through whichever
  // replica currently holds the lease (a standby silently ignores them).
  auto ctl = [&tb, &cfg]() -> yoda::Controller* {
    if (!cfg.controller_ha) {
      return tb.controller.get();
    }
    yoda::Controller* leader = tb.LeaderController();
    return leader != nullptr ? leader : tb.controller.get();
  };

  if (cfg.controller_ha) {
    tb.StartAllControllers();
    tb.AwaitLeader();
  }
  for (const auto& def : scenario.vips) {
    ctl()->DefineVip(def.vip, 80, def.vip_rules);
    if (def.store_mode != yoda::StoreMode::kStateful) {
      ctl()->SetStoreMode(def.vip, def.store_mode);
    }
    if (def.tls_cert) {
      for (auto& inst : tb.instances) {
        inst->InstallVipTls(def.vip, *def.tls_cert, def.tls_key);
      }
      for (auto& inst : tb.spares) {
        inst->InstallVipTls(def.vip, *def.tls_cert, def.tls_key);
      }
    }
  }
  if (!cfg.controller_ha) {
    tb.controller->Start();
  }

  sim::Rng rng(scenario.testbed.seed ^ 0x5ce9a210ULL);
  // Load generators keep per-generator state via shared_ptr closures. The
  // closures capture a weak_ptr to themselves (ownership stays in
  // `load_loops`), so rescheduling cannot form a shared_ptr cycle.
  std::vector<std::shared_ptr<std::function<void()>>> load_loops;
  auto start_load = [&](net::IpAddr vip, double rate, sim::Duration duration, bool use_tls) {
    const sim::Time end = tb.sim.now() + duration;
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_tick = tick;
    *tick = [&, vip, rate, end, use_tls, weak_tick]() {
      if (tb.sim.now() > end) {
        return;
      }
      auto* client = tb.clients[static_cast<std::size_t>(rng.UniformInt(
                                    0, static_cast<std::int64_t>(tb.clients.size()) - 1))].get();
      const auto& obj = tb.catalog->objects()[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(tb.catalog->objects().size()) - 1))];
      FetchOptions opts;
      opts.use_tls = use_tls;
      client->FetchObject(vip, 80, obj.url, opts, [&report, &tb](const FetchResult& r) {
        if (r.ok) {
          ++report.requests_ok;
          report.latency_ms.Add(sim::ToMillis(r.latency));
        } else {
          ++report.requests_failed;
        }
      });
      if (auto self = weak_tick.lock()) {
        tb.sim.After(sim::FromSeconds(rng.Exponential(1.0 / rate)), *self);
      }
    };
    load_loops.push_back(tick);
    (*tick)();
  };

  for (const ScenarioEvent& ev : scenario.events) {
    tb.sim.At(ev.at, [&, ev]() {
      if (ev.action == "load" && ev.args.size() >= 5) {
        auto vip = ParseIp(ev.args[0]);
        double rate = std::strtod(ev.args[2].c_str(), nullptr);
        auto duration = ParseDuration(ev.args[4]);
        const bool use_tls = ev.args.size() > 5 && ev.args[5] == "tls";
        if (vip && duration && rate > 0) {
          say("load " + ev.args[0] + " @" + ev.args[2] + "/s for " + ev.args[4]);
          start_load(*vip, rate, *duration, use_tls);
        }
        return;
      }
      ApplyControlEvent(tb, scenario, ev, ctl(), say);
    });
  }

  if (scenario.run_until > 0) {
    tb.sim.RunUntil(scenario.run_until);
  } else {
    tb.sim.Run();
  }

  for (auto& inst : tb.instances) {
    report.takeovers +=
        inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
    report.reswitches += inst->stats().reswitches;
  }
  for (auto& inst : tb.spares) {
    report.takeovers +=
        inst->stats().takeovers_client_side + inst->stats().takeovers_server_side;
  }
  report.failures_detected = tb.controller->detected_failures();
  report.controller_events = tb.controller->events();
  report.metrics_table = tb.metrics.TextTable();
  report.metrics_jsonl = tb.metrics.JsonLines();
  {
    std::ostringstream traces;
    tb.flight.ExportJsonLines(traces);
    report.traces_jsonl = traces.str();
  }
  if (after_run) {
    after_run(tb);
  }
  return report;
}

}  // namespace workload
