#include "src/workload/browser_client.h"

#include <utility>

#include "src/kv/hash_ring.h"
#include "src/tls/tls.h"

namespace workload {

// One logical fetch, possibly spanning several connection attempts and (for
// FetchSequence) several requests on one connection.
struct BrowserClient::Fetch {
  BrowserClient* owner = nullptr;
  net::IpAddr target = 0;
  net::Port port = 80;
  std::vector<std::string> urls;  // One entry for FetchObject.
  std::size_t url_index = 0;
  FetchOptions opts;
  FetchCallback done;
  std::function<void(std::vector<FetchResult>)> sequence_done;
  std::vector<FetchResult> sequence_results;

  sim::Time started = 0;
  int attempts = 0;
  bool finished = false;

  std::unique_ptr<net::TcpEndpoint> ep;
  net::FiveTuple tuple;
  http::ResponseParser parser;
  sim::TimerHandle timeout_timer;

  // TLS state (per attempt).
  tls::RecordReader tls_reader;
  std::uint64_t tls_client_random = 0;
  std::uint64_t tls_session_key = 0;
  bool tls_ready = false;
  std::uint64_t tls_out_offset = 0;
  std::uint64_t tls_in_offset = 0;
  std::string tls_certificate;
};

// Sequential page load (HTML, then each embedded object). Kept as plain
// state advanced by PageStep so the continuation never owns itself.
struct BrowserClient::PageFetch {
  net::IpAddr target = 0;
  net::Port port = 80;
  std::vector<std::string> remaining;
  FetchResult aggregate;
  sim::Time started = 0;
  FetchCallback done;
  FetchOptions options;
};

BrowserClient::BrowserClient(sim::Simulator* simulator, net::Network* network, net::IpAddr ip,
                             std::uint64_t seed)
    : sim_(simulator), net_(network), ip_(ip), rng_(seed) {
  // Spread ephemeral port ranges across clients, as real OSes randomize
  // them. This matters to Yoda: the server-side flow identity is
  // (backend, VIP, client port) — the client's port is reused as the
  // VIP-side source port (Fig 4) — so two clients sharing a port number and
  // a backend would collide.
  next_port_ = static_cast<net::Port>(10'000 + (kv::Mix64(ip) % 55) * 1'000);
  net_->Attach(ip_, this, net::Region::kInternet);
}

BrowserClient::~BrowserClient() {
  // Fetches still in flight hold their endpoint, and the endpoint's
  // callbacks hold the fetch; drop the endpoints so the cycle unwinds when
  // demux_ releases its refs.
  for (auto& [tuple, fetch] : demux_) {
    fetch->ep.reset();
  }
}

net::Port BrowserClient::NextPort() {
  net::Port p = next_port_++;
  if (next_port_ < 10'000) {
    next_port_ = 10'000;
  }
  return p;
}

void BrowserClient::HandlePacket(const net::Packet& p) {
  audit_.Check();
  auto it = demux_.find(p.tuple());
  if (it == demux_.end()) {
    return;
  }
  std::shared_ptr<Fetch> fetch = it->second;
  if (fetch->ep != nullptr) {
    fetch->ep->HandlePacket(p);
  }
}

void BrowserClient::FetchObject(net::IpAddr target, net::Port port, const std::string& url,
                                const FetchOptions& options, FetchCallback done) {
  audit_.Check();
  auto fetch = std::make_shared<Fetch>();
  fetch->owner = this;
  fetch->target = target;
  fetch->port = port;
  fetch->urls = {url};
  fetch->opts = options;
  fetch->done = std::move(done);
  fetch->started = sim_->now();
  StartAttempt(fetch);
}

void BrowserClient::FetchSequence(net::IpAddr target, net::Port port,
                                  const std::vector<std::string>& urls,
                                  const FetchOptions& options,
                                  std::function<void(std::vector<FetchResult>)> done) {
  auto fetch = std::make_shared<Fetch>();
  fetch->owner = this;
  fetch->target = target;
  fetch->port = port;
  fetch->urls = urls;
  fetch->opts = options;
  fetch->opts.version = "HTTP/1.1";
  fetch->sequence_done = std::move(done);
  fetch->started = sim_->now();
  StartAttempt(fetch);
}

void BrowserClient::StartAttempt(std::shared_ptr<Fetch> fetch) {
  ++fetch->attempts;
  fetch->parser = http::ResponseParser();

  const net::Port sport = NextPort();
  fetch->tuple = net::FiveTuple{fetch->target, ip_, fetch->port, sport};
  demux_[fetch->tuple] = fetch;

  fetch->ep = std::make_unique<net::TcpEndpoint>(
      sim_, [this](net::Packet p) { net_->Send(std::move(p)); }, tcp_);

  auto send_request = [this, fetch]() {
    std::string wire;
    const std::size_t first = fetch->url_index;
    const std::size_t last = fetch->opts.pipeline ? fetch->urls.size() - 1 : fetch->url_index;
    for (std::size_t i = first; i <= last; ++i) {
      http::Request req = http::MakeGet(fetch->urls[i], fetch->opts.host, fetch->opts.version);
      if (!fetch->opts.cookie.empty()) {
        req.SetHeader("cookie", fetch->opts.cookie);
      }
      if (fetch->opts.version == "HTTP/1.1" && i + 1 == fetch->urls.size()) {
        req.SetHeader("connection", "close");
      }
      wire += req.Serialize();
    }
    if (fetch->opts.use_tls) {
      std::string sealed = tls::Crypt(fetch->tls_session_key, fetch->tls_out_offset, wire);
      fetch->tls_out_offset += wire.size();
      wire = tls::EncodeRecord({tls::RecordType::kApplicationData, std::move(sealed)});
    }
    fetch->ep->Send(wire);
  };

  if (fetch->opts.use_tls) {
    // HTTPS: open with a ClientHello; the request follows the handshake.
    fetch->tls_reader = tls::RecordReader();
    fetch->tls_ready = false;
    fetch->tls_out_offset = 0;
    fetch->tls_in_offset = 0;
    fetch->tls_client_random = rng_.engine()();
    fetch->ep->set_on_connected([fetch]() {
      tls::ClientHello hello{fetch->tls_client_random};
      fetch->ep->Send(tls::EncodeRecord({tls::RecordType::kClientHello, hello.Serialize()}));
    });
  } else {
    fetch->ep->set_on_connected(send_request);
  }

  fetch->ep->set_on_data([this, fetch, send_request](std::string_view raw) {
    if (fetch->finished) {
      return;
    }
    std::string_view bytes = raw;
    std::string plaintext;
    if (fetch->opts.use_tls) {
      fetch->tls_reader.Feed(raw);
      while (auto record = fetch->tls_reader.Next()) {
        if (record->type == tls::RecordType::kServerCertificate && !fetch->tls_ready) {
          auto cert = tls::ServerCertificate::Parse(record->payload);
          if (!cert) {
            continue;
          }
          fetch->tls_certificate = cert->certificate;
          fetch->tls_session_key =
              tls::DeriveSessionKey(fetch->tls_client_random, cert->server_random);
          fetch->tls_ready = true;
          fetch->ep->Send(tls::EncodeRecord({tls::RecordType::kClientFinished, ""}));
          send_request();
        } else if (record->type == tls::RecordType::kApplicationData && fetch->tls_ready) {
          plaintext += tls::Crypt(fetch->tls_session_key,
                                  tls::kServerDirectionOffset + fetch->tls_in_offset,
                                  record->payload);
          fetch->tls_in_offset += record->payload.size();
        }
      }
      if (plaintext.empty()) {
        return;
      }
      bytes = plaintext;
    }
    if (fetch->parser.Feed(bytes) != http::ParseStatus::kComplete) {
      return;
    }
    // Pipelined responses can complete several at once; drain them in order.
    while (fetch->parser.status() == http::ParseStatus::kComplete && !fetch->finished) {
      http::Response resp = fetch->parser.TakeResponse();
      FetchResult r;
      r.ok = resp.status >= 200 && resp.status < 400;
      r.status = resp.status;
      r.bytes = resp.body.size();
      r.latency = sim_->now() - fetch->started;
      r.retries_used = fetch->attempts - 1;
      r.tls_certificate = fetch->tls_certificate;
      if (fetch->sequence_done) {
        fetch->sequence_results.push_back(r);
        ++fetch->url_index;
        if (fetch->url_index < fetch->urls.size()) {
          if (!fetch->opts.pipeline) {
            send_request();
            return;
          }
          continue;  // Pipelined: the next response is already inbound.
        }
        fetch->ep->Close();
        FinishFetch(fetch, r);
        return;
      }
      fetch->ep->Close();
      FinishFetch(fetch, r);
      return;
    }
  });

  fetch->ep->set_on_reset([this, fetch]() {
    if (fetch->finished) {
      return;
    }
    if (fetch->attempts <= fetch->opts.retries) {
      demux_.erase(fetch->tuple);
      StartAttempt(fetch);  // Browser retries on connection reset.
      return;
    }
    FetchResult r;
    r.reset = true;
    r.latency = sim_->now() - fetch->started;
    r.retries_used = fetch->attempts - 1;
    FinishFetch(fetch, r);
  });
  fetch->ep->set_on_failed([this, fetch]() {
    if (fetch->finished) {
      return;
    }
    FetchResult r;
    r.timed_out = true;
    r.latency = sim_->now() - fetch->started;
    r.retries_used = fetch->attempts - 1;
    FinishFetch(fetch, r);
  });

  // Browser HTTP timeout for this attempt.
  fetch->timeout_timer.Cancel();
  fetch->timeout_timer = sim_->After(fetch->opts.http_timeout, [this, fetch]() {
    if (fetch->finished) {
      return;
    }
    fetch->ep->Abort();
    if (fetch->attempts <= fetch->opts.retries) {
      demux_.erase(fetch->tuple);
      StartAttempt(fetch);  // Browser re-issues the request after timeout.
      return;
    }
    FetchResult r;
    r.timed_out = true;
    r.latency = sim_->now() - fetch->started;
    r.retries_used = fetch->attempts - 1;
    FinishFetch(fetch, r);
  });

  // The demux tuple is keyed on *incoming* packets (src=server, sport=server
  // port, dport=our local port); connect from the local port accordingly.
  fetch->ep->Connect(ip_, fetch->tuple.dport, fetch->target, fetch->port,
                     static_cast<std::uint32_t>(rng_.UniformInt(1, 1u << 30)));
}

void BrowserClient::FinishFetch(std::shared_ptr<Fetch> fetch, FetchResult result) {
  if (fetch->finished) {
    return;
  }
  fetch->finished = true;
  fetch->timeout_timer.Cancel();
  // Keep the endpoint alive until teardown completes; reclaim the tuple soon.
  // Destroying the endpoint first drops its callbacks' refs to the fetch —
  // the callbacks capture the fetch, and the fetch owns the endpoint, so an
  // intact endpoint would keep the whole cycle alive forever. The `finished`
  // guard protects a new fetch that reused the tuple in the meantime.
  sim_->After(sim::Sec(3), [this, tuple = fetch->tuple]() {
    auto it = demux_.find(tuple);
    if (it != demux_.end() && it->second->finished) {
      it->second->ep.reset();
      demux_.erase(it);
    }
  });
  // Shed the heavy per-fetch state now rather than at the 3 s reclaim: the
  // parser's response buffers and URL list dominate client-side RSS at high
  // load, while the teardown window only needs the endpoint and the tuple.
  // The endpoint callbacks are all gated on `finished`, so none of this is
  // reachable again.
  std::function<void(std::vector<FetchResult>)> sequence_done =
      std::move(fetch->sequence_done);
  std::vector<FetchResult> sequence_results = std::move(fetch->sequence_results);
  FetchCallback done = std::move(fetch->done);
  const std::size_t url_count = fetch->urls.size();
  fetch->parser = http::ResponseParser();
  fetch->tls_reader = tls::RecordReader();
  fetch->urls.clear();
  fetch->urls.shrink_to_fit();
  fetch->tls_certificate.clear();
  fetch->tls_certificate.shrink_to_fit();
  if (sequence_done) {
    if (!result.ok && sequence_results.size() < url_count) {
      sequence_results.push_back(result);
    }
    sequence_done(std::move(sequence_results));
    return;
  }
  if (done) {
    done(result);
  }
}

void BrowserClient::FetchPage(net::IpAddr target, net::Port port, const std::string& html_url,
                              const std::vector<std::string>& embedded,
                              const FetchOptions& options, FetchCallback done) {
  auto page = std::make_shared<PageFetch>();
  page->target = target;
  page->port = port;
  page->remaining = embedded;
  page->started = sim_->now();
  page->done = std::move(done);
  page->options = options;
  FetchObject(target, port, html_url, options,
              [this, page](const FetchResult& r) { PageStep(page, r); });
}

void BrowserClient::PageStep(const std::shared_ptr<PageFetch>& page, const FetchResult& result) {
  page->aggregate.ok = page->aggregate.ok || result.ok;
  page->aggregate.bytes += result.bytes;
  page->aggregate.timed_out = page->aggregate.timed_out || result.timed_out;
  page->aggregate.reset = page->aggregate.reset || result.reset;
  page->aggregate.retries_used += result.retries_used;
  if ((!result.ok) || page->remaining.empty()) {
    page->aggregate.ok = result.ok && !page->aggregate.timed_out && !page->aggregate.reset;
    page->aggregate.latency = sim_->now() - page->started;
    page->done(page->aggregate);
    return;
  }
  const std::string next = page->remaining.front();
  page->remaining.erase(page->remaining.begin());
  FetchObject(page->target, page->port, next, page->options,
              [this, page](const FetchResult& r) { PageStep(page, r); });
}

OpenLoopGenerator::OpenLoopGenerator(sim::Simulator* simulator,
                                     std::vector<BrowserClient*> clients, std::uint64_t seed,
                                     Config config)
    : sim_(simulator), clients_(std::move(clients)), rng_(seed), cfg_(config) {}

void OpenLoopGenerator::Start() {
  end_time_ = sim_->now() + cfg_.duration;
  ScheduleNext(sim_->now());
}

void OpenLoopGenerator::ScheduleNext(sim::Time when) {
  if (when >= end_time_) {
    return;
  }
  sim_->At(when, [this]() {
    ++issued_;
    BrowserClient* client =
        clients_[static_cast<std::size_t>(rng_.UniformInt(0, static_cast<std::int64_t>(
                                                                 clients_.size()) - 1))];
    const std::string& url =
        cfg_.urls[static_cast<std::size_t>(rng_.UniformInt(0, static_cast<std::int64_t>(
                                                                  cfg_.urls.size()) - 1))];
    client->FetchObject(cfg_.target, cfg_.port, url, cfg_.fetch, [this](const FetchResult& r) {
      if (r.ok) {
        ++completed_;
        latency_ms_.Add(sim::ToMillis(r.latency));
      } else {
        ++failed_;
      }
    });
    // Schedule the next arrival lazily so the event queue stays small.
    const double mean_gap = 1.0 / cfg_.requests_per_second;
    const double gap = cfg_.poisson ? rng_.Exponential(mean_gap) : mean_gap;
    ScheduleNext(sim_->now() + sim::FromSeconds(gap));
  });
}

}  // namespace workload
