// Scenario runner: a small text DSL that assembles a testbed, drives load,
// injects failures and policy changes on a timeline, and reports results.
// This is what `tools/yodasim` executes, so experiments can be scripted
// without writing C++.
//
//   # comments and blank lines are ignored
//   seed 42
//   threads 4                            # cell-sharded run on 4 workers
//   intra-threads 4                      # OR: one placed testbed, 4 workers
//   place instance 0 5                   # pin instance 0 to shard 5
//   place controller 0                   # pin the control plane to shard 0
//   instances 4
//   spares 2
//   backends 6
//   kv-servers 3
//   kv-replicas 2
//   clients 4
//   vip 10.200.0.1                       # define a VIP (port 80)
//   rule 10.200.0.1 name=r1 priority=1 url=* split=10.3.0.1,10.3.0.2
//   tls 10.200.0.1 cert MY-CERT key 4242 # enable SSL termination
//   store-mode stateless                 # all VIPs (or: store-mode <vip> <mode>)
//   at 0ms load 10.200.0.1 rate 200 duration 10s [tls]
//   at 4s store-mode 10.200.0.1 stateful # flip a VIP's store contract live
//   at 5s fail-instance 0
//   at 6s recover-instance 0
//   at 7s fail-backend 1
//   at 8s recover-backend 1
//   at 9s fail-kv 0
//   at 9s update-rules 10.200.0.1 name=r2 priority=2 url=* split=10.3.0.3
//   at 10s add-instance                  # activate one spare
//   at 11s assign                        # many-to-many assignment round
//
// Backend i is 10.3.0.(i+1); instance i is 10.1.0.(i+1) (the Testbed plan).

#ifndef SRC_WORKLOAD_SCENARIO_H_
#define SRC_WORKLOAD_SCENARIO_H_

#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/workload/testbed.h"

namespace workload {

struct ScenarioEvent {
  sim::Time at = 0;
  std::string action;  // First token after the time.
  std::vector<std::string> args;
  std::string raw;  // Original tail for rule specs.
};

// Cell count of a `threads N` run. Fixed — the partitioning (and hence every
// trace) depends only on the scenario, never on how many worker threads
// execute it; N picks the worker count, which ranges over [1, kScenarioCells].
inline constexpr int kScenarioCells = 8;

struct Scenario {
  TestbedConfig testbed;
  // `threads N` directive: run the scenario cell-sharded on a sim::ShardedSim
  // with N worker threads — the experiment is replicated into kScenarioCells
  // independent cells (one full testbed per logical shard, distinct seeds),
  // with timeline events conducted from shard 0 over cross-shard mail. 0 (no
  // directive) keeps the legacy single-Simulator path byte-for-byte.
  int threads = 0;
  // `intra-threads N` directive: run ONE testbed spread over kScenarioCells
  // shards of a sim::ShardedSim (intra-cell sharding: each instance, backend,
  // KV server and client on its own shard per `placement`), executed by N
  // worker threads. Components talk exclusively through the shard-aware
  // network / cross-shard calls, so the trace is byte-identical for any N.
  // Mutually exclusive with `threads`. `place <kind> <idx> <shard>` (kinds:
  // instance backend kv client proxy) and `place <controller|fabric> <shard>`
  // override the default round-robin placement.
  int intra_threads = 0;
  sim::IntraPlacement placement;
  struct VipDef {
    net::IpAddr vip = 0;
    std::vector<rules::Rule> vip_rules;
    std::optional<std::string> tls_cert;
    std::uint64_t tls_key = 0;
    // `store-mode` directive: the VIP's per-flow store contract, installed
    // through the controller right after DefineVip. Stateless demotes the
    // three ACK-point store writes to the write-behind takeover journal.
    yoda::StoreMode store_mode = yoda::StoreMode::kStateful;
  };
  std::vector<VipDef> vips;
  std::vector<ScenarioEvent> events;
  sim::Duration run_until = 0;  // 0 = run to completion.
};

// Parses the DSL. Returns nullopt and fills `error` (with a line number) on
// malformed input.
std::optional<Scenario> ParseScenario(const std::string& text, std::string* error = nullptr);

// Parses "250ms" / "5s" / "2m" into a Duration; nullopt on bad syntax.
std::optional<sim::Duration> ParseDuration(const std::string& token);

// Parses dotted-quad "10.0.0.1"; nullopt on bad syntax.
std::optional<net::IpAddr> ParseIp(const std::string& token);

struct ScenarioReport {
  // 1 for legacy runs; kScenarioCells for `threads N` runs, whose jsonl
  // sections below are per-cell exports concatenated in shard order (each
  // preceded by a {"cell":i} marker line).
  int cells = 1;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t takeovers = 0;
  std::uint64_t reswitches = 0;
  int failures_detected = 0;
  sim::Histogram latency_ms;
  std::vector<yoda::ControllerEvent> controller_events;
  // Uniform observability snapshot, taken after the run: the registry as an
  // aligned text table and as JSON lines, plus the flight recorder's flow
  // traces as JSON lines (see src/obs/).
  std::string metrics_table;
  std::string metrics_jsonl;
  std::string traces_jsonl;
};

// Builds the testbed, schedules the events, runs the simulation and returns
// the aggregate report. `log` (optional) receives progress lines. `after_run`
// (optional) is invoked on the testbed after the simulation finishes but
// before teardown — tools use it to inspect the flight recorder and metrics
// registry directly.
ScenarioReport RunScenario(const Scenario& scenario, std::ostream* log = nullptr,
                           const std::function<void(Testbed&)>& after_run = nullptr);

}  // namespace workload

#endif  // SRC_WORKLOAD_SCENARIO_H_
