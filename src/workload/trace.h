// Synthetic 24-hour production trace (substitute for the paper's §8 trace:
// "all flows received by the Internet-facing services in a 24-hour period...
// 100+ VIPs and 50K+ L7 rules").
//
// Per-VIP traffic is Zipf-popular with a phase-shifted diurnal curve, noise,
// and (for a subset of VIPs) traffic bursts — the ingredients that produce
// the paper's observed max-to-average spread of 1.07x-50.3x (avg 3.7x).

#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/assign/problem.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace workload {

struct VipTraceSpec {
  int id = 0;
  int rules = 0;
  std::vector<double> series;  // Traffic (instance-capacity units) per bin.

  double MaxRate() const;
  double AvgRate() const;
  double MaxToAvgRatio() const;
  double TotalVolume() const;
};

struct Trace {
  sim::Duration bin_width = sim::Minutes(10);
  std::vector<VipTraceSpec> vips;

  std::size_t bins() const { return vips.empty() ? 0 : vips[0].series.size(); }
  double TotalAtBin(std::size_t bin) const;
  int TotalRules() const;
};

struct TraceConfig {
  int vips = 110;
  int bins = 144;  // 24 h at 10-minute bins.
  double zipf_s = 1.1;
  // Aggregate average traffic across all VIPs, in instance-capacity units
  // (i.e. total average demand of ~N instances).
  double total_average_traffic = 40.0;
  // Diurnal amplitude range (fraction of the VIP's base rate).
  double min_diurnal = 0.1;
  double max_diurnal = 0.8;
  double noise = 0.08;
  // Fraction of VIPs that exhibit bursts, and the burst magnitude range
  // (sampled skewed-low within the range).
  double bursty_fraction = 0.25;
  double burst_factor_min = 2.0;
  double burst_factor_max = 48.0;
  int bursts_per_bursty_vip = 2;
  // Rule-count distribution (log-normal, clipped to [min, max]).
  int median_rules = 400;
  double rules_sigma = 0.8;
  int min_rules = 20;
  int max_rules = 1'900;
  // High-traffic VIPs (base rate > T_y) keep compact rule sets, so several
  // of their replicas can share an instance under R_y — the regime in which
  // the paper's ~27% instance overhead and ~1% rules/instance hold.
  int hot_vip_max_rules = 600;
};

Trace GenerateTrace(sim::Rng& rng, const TraceConfig& config = {});

struct BinProblemConfig {
  double traffic_capacity = 1.0;  // T_y.
  int rule_capacity = 2'000;      // R_y (Fig 6: 5 ms target -> 2K rules).
  // n_v = max(1, ceil(replication_factor * t_v / T_y)): the paper's
  // "4x more replicas than standalone" setting.
  double replication_factor = 4.0;
  // o_v: f_v = floor(n_v * o_v). 0.25 reproduces the paper's ~27% instance
  // overhead of many-to-many over all-to-all (the failure headroom is
  // t_v/(n_v - f_v) = 4/3 of the nominal share).
  double oversubscription = 0.25;
  int max_replicas = 4096;  // Effectively uncapped, as in the paper's ILP.
  double migration_limit = 0.10;  // delta (paper: 10%).
};

// Builds the Fig 7 problem for one 10-minute bin of the trace.
assign::Problem ProblemForBin(const Trace& trace, std::size_t bin,
                              const BinProblemConfig& config = {});

}  // namespace workload

#endif  // SRC_WORKLOAD_TRACE_H_
