#include "src/workload/object_catalog.h"

#include <algorithm>

namespace workload {
namespace {

const char* ExtensionFor(int kind) {
  switch (kind) {
    case 0:
      return ".html";
    case 1:
      return ".jpg";
    case 2:
      return ".css";
    case 3:
      return ".js";
    default:
      return ".php";
  }
}

const char* ContentTypeFor(int kind) {
  switch (kind) {
    case 0:
      return "text/html";
    case 1:
      return "image/jpeg";
    case 2:
      return "text/css";
    case 3:
      return "application/javascript";
    default:
      return "text/html";
  }
}

}  // namespace

ObjectCatalog::ObjectCatalog(sim::Rng& rng, CatalogConfig cfg) {
  objects_.reserve(cfg.objects);
  for (std::size_t i = 0; i < cfg.objects; ++i) {
    WebObject o;
    const int kind = static_cast<int>(rng.UniformInt(0, 4));
    o.url = "/obj/" + std::to_string(i) + ExtensionFor(kind);
    o.content_type = ContentTypeFor(kind);
    double size = rng.LogNormalFromMedian(static_cast<double>(cfg.median_size), cfg.sigma);
    o.size = std::clamp(static_cast<std::size_t>(size), cfg.min_size, cfg.max_size);
    by_url_[o.url] = objects_.size();
    objects_.push_back(std::move(o));
  }

  pages_.reserve(cfg.pages);
  for (std::size_t i = 0; i < cfg.pages; ++i) {
    Page page;
    // Each page's HTML doc is one of the catalog objects.
    page.html_url = objects_[static_cast<std::size_t>(
                                 rng.UniformInt(0, static_cast<std::int64_t>(cfg.objects) - 1))]
                        .url;
    const int embedded = static_cast<int>(rng.UniformInt(cfg.min_embedded, cfg.max_embedded));
    for (int e = 0; e < embedded; ++e) {
      page.embedded.push_back(
          objects_[static_cast<std::size_t>(
                       rng.UniformInt(0, static_cast<std::int64_t>(cfg.objects) - 1))]
              .url);
    }
    pages_.push_back(std::move(page));
  }
}

const WebObject* ObjectCatalog::Find(const std::string& url) const {
  auto it = by_url_.find(url);
  return it == by_url_.end() ? nullptr : &objects_[it->second];
}

std::string ObjectCatalog::BodyFor(const WebObject& object) const {
  std::string body(object.size, 'x');
  // Stamp the URL at the front so responses are distinguishable in tests.
  const std::string tag = object.url + "\n";
  std::copy(tag.begin(), tag.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(tag.size(), body.size())),
            body.begin());
  return body;
}

std::size_t ObjectCatalog::MedianSize() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(objects_.size());
  for (const WebObject& o : objects_) {
    sizes.push_back(o.size);
  }
  std::nth_element(sizes.begin(), sizes.begin() + static_cast<std::ptrdiff_t>(sizes.size() / 2),
                   sizes.end());
  return sizes[sizes.size() / 2];
}

}  // namespace workload
