// Testbed: one-call assembly of the paper's §7 evaluation environment —
// network fabric, L4 muxes, TCPStore (memcached fleet + replicating client),
// Yoda instances, controller, backend web servers, catalog and clients.
// Integration tests, examples and benches all build on this instead of
// hand-wiring sixty objects.
//
// Default layout mirrors the Azure testbed: Yoda instances 10.1.0.x,
// TCPStore 10.2.0.x, backends 10.3.0.x, baseline proxies 10.4.0.x, clients
// 10.9.0.x (Internet region), VIPs 10.200.0.x.

#ifndef SRC_WORKLOAD_TESTBED_H_
#define SRC_WORKLOAD_TESTBED_H_

#include <memory>
#include <vector>

#include "src/baseline/proxy_instance.h"
#include "src/core/controller.h"
#include "src/fault/fault_plane.h"
#include "src/core/tcp_store.h"
#include "src/core/yoda_instance.h"
#include "src/kv/kv_server.h"
#include "src/kv/replicating_client.h"
#include "src/l4lb/fabric.h"
#include "src/net/network.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/placement.h"
#include "src/sim/sharded_sim.h"
#include "src/sim/simulator.h"
#include "src/workload/browser_client.h"
#include "src/workload/http_server_node.h"
#include "src/workload/object_catalog.h"

namespace workload {

struct TestbedConfig {
  std::uint64_t seed = 42;
  // When set, every component is wired to this simulator instead of the
  // testbed's own `sim` member. Cell-sharded scenario runs use this to place
  // one whole testbed on each sim::ShardedSim shard; the pointer must
  // outlive the testbed.
  sim::Simulator* external_sim = nullptr;
  // Intra-cell sharding: when set, this ONE testbed spans the engine's
  // shards per `placement` — each instance/backend/kv/client is constructed
  // on its owning shard's simulator, the network delivers cross-shard
  // packets through the engine's mailboxes, the fabric and controller get
  // their cross-shard routing hooks, and observability is per-shard (see
  // metrics_lane/flight_lane). Mutually exclusive with external_sim; the
  // engine must outlive the testbed, and its epoch window must not exceed
  // the minimum cross-shard latency (dc_latency and kv network_delay).
  // Unsupported in this mode: assignment rollouts / auto-scale (counter
  // aggregation reads instance state cross-shard) and fault-plane packet
  // overlays (per-packet draws would race).
  sim::ShardedSim* engine = nullptr;
  sim::IntraPlacement placement;
  int yoda_instances = 4;
  int spare_instances = 0;
  int baseline_proxies = 0;
  int kv_servers = 3;
  int kv_replicas = 2;
  int backends = 6;
  int muxes = 4;
  int clients = 4;
  // Latency model: campus clients to the Azure DC, and intra-DC.
  sim::Duration internet_latency = sim::Msec(33);
  sim::Duration internet_jitter = sim::Msec(3);
  sim::Duration dc_latency = sim::Usec(250);
  sim::Duration dc_jitter = sim::Usec(50);
  sim::Duration server_processing = sim::Msec(1);
  bool build_catalog = true;
  CatalogConfig catalog;
  yoda::YodaInstanceConfig instance_template;  // ip is overwritten per instance.
  baseline::ProxyConfig proxy_template;        // ip is overwritten per proxy.
  yoda::ControllerConfig controller;
  // Controller HA: replica count (replica 0 is the `controller` member) and
  // whether the replicas contend for the store-backed leader lease. Off
  // (default) builds the single controller, identical to the seed. When on,
  // the testbed gives the control plane its own ReplicatingClient into the
  // same KV ring, enables bounded step retries (5, unless the template set
  // its own), and leaves every replica stopped until StartAllControllers().
  int controllers = 1;
  bool controller_ha = false;
  kv::KvServerConfig kv;
  kv::ReplicatingClientConfig kv_client;
  net::TcpConfig server_tcp;
  HttpServerConfig server_template;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // --- address plan ---
  net::IpAddr controller_ip(int i) const { return net::MakeIp(10, 0, 0, static_cast<std::uint8_t>(i + 1)); }
  net::IpAddr instance_ip(int i) const { return net::MakeIp(10, 1, 0, static_cast<std::uint8_t>(i + 1)); }
  net::IpAddr kv_ip(int i) const { return net::MakeIp(10, 2, 0, static_cast<std::uint8_t>(i + 1)); }
  net::IpAddr backend_ip(int i) const { return net::MakeIp(10, 3, 0, static_cast<std::uint8_t>(i + 1)); }
  net::IpAddr proxy_ip(int i) const { return net::MakeIp(10, 4, 0, static_cast<std::uint8_t>(i + 1)); }
  net::IpAddr client_ip(int i) const { return net::MakeIp(10, 9, 0, static_cast<std::uint8_t>(i + 1)); }
  net::IpAddr vip(int i = 0) const { return net::MakeIp(10, 200, 0, static_cast<std::uint8_t>(i + 1)); }

  // Equal-weight split rule over backends [first, first+count).
  std::vector<rules::Rule> EqualSplitRules(int first_backend, int count,
                                           const std::string& name = "r-default",
                                           const std::string& url_glob = "*");

  // Defines vip(0) with an equal split over all backends and starts the
  // controller monitor.
  void DefineDefaultVipAndStart();

  // Installs rules on all baseline proxies.
  void InstallProxyRules(const std::vector<rules::Rule>& proxy_rules);

  // Uniform end-of-run observability dump used by benches and examples:
  // prints the metrics registry as an aligned text table to stdout.
  void PrintMetricsSnapshot(const char* title = "metrics registry snapshot") const;

  // --- intra-cell sharding (cfg.engine set) ---
  bool placed() const { return cfg.engine != nullptr; }
  // Owning shard of an address under cfg.placement (controller_shard when
  // unplaced or the address is outside the testbed plan).
  int OwnerShardOf(net::IpAddr ip) const;
  // Simulator that owns `shard` (the testbed's single simulator when
  // unplaced).
  sim::Simulator* SimFor(int shard) const {
    return cfg.engine != nullptr ? &cfg.engine->shard(shard) : simulator;
  }
  // Runs `fn` on `shard`: inline when unplaced, idle, or already executing
  // there; otherwise a cross-shard CallOn landing at the next barrier.
  void RunOnOwner(int shard, std::function<void()> fn);
  // Per-shard observability lanes. Placed components report into their own
  // shard's registry/recorder (no cross-thread writes); report code merges
  // the lanes in shard order. Unplaced, both fall back to the shared
  // `metrics`/`flight` members and lane_count() is 0.
  int lane_count() const { return static_cast<int>(shard_metrics.size()); }
  obs::Registry& metrics_lane(int shard) {
    return shard_metrics.empty() ? metrics
                                 : *shard_metrics[static_cast<std::size_t>(shard)];
  }
  obs::FlightRecorder& flight_lane(int shard) {
    return shard_flight.empty() ? flight
                                : *shard_flight[static_cast<std::size_t>(shard)];
  }

  // Crash helpers (instance/proxy/kv/backend): mark down + drop state.
  void FailInstance(int i);
  void RecoverInstance(int i);
  void FailProxy(int i);
  void FailBackend(int i);
  void RecoverBackend(int i);
  void FailKvServer(int i);

  // Fault-plane crash/restart routed through the wired handlers: CrashInstance
  // drops state and blackholes the address; RestartInstance brings it back
  // warm (revive only) or cold (Network::RestartNode -> OnColdRestart).
  void CrashInstance(int i) { faults->CrashNode(instance_ip(i)); }
  void RestartInstance(int i, fault::FaultPlane::RestartMode mode =
                                  fault::FaultPlane::RestartMode::kCold) {
    faults->RestartNode(instance_ip(i), mode);
  }
  // KV replica answers, but `d` late (0 clears).
  void SlowKvServer(int i, sim::Duration d) { faults->SlowKv(kv_ip(i), d); }

  // --- controller HA helpers (controller_ha builds) ---
  int controller_count() const { return 1 + static_cast<int>(standbys.size()); }
  yoda::Controller* ControllerAt(int i) {
    return i == 0 ? controller.get() : standbys[static_cast<std::size_t>(i - 1)].get();
  }
  // Starts every replica (each contends for the lease; first CAS wins).
  void StartAllControllers();
  // The replica currently acting as leader, or nullptr during an interregnum.
  yoda::Controller* LeaderController();
  // Runs the simulation until some replica holds the lease (or max_wait).
  yoda::Controller* AwaitLeader(sim::Duration max_wait = sim::Sec(2));
  // Crash/restart through the fault plane so the flight recorder sees the
  // kNodeCrash / kNodeRestart events the failover benches measure from.
  void CrashController(int i) { faults->CrashNode(controller_ip(i)); }
  void RestartController(int i) {
    faults->RestartNode(controller_ip(i), fault::FaultPlane::RestartMode::kWarm);
  }

  // --- components (construction order matters; declared accordingly) ---
  TestbedConfig cfg;
  sim::Simulator sim;
  // The simulator every component actually runs on: &sim normally, the
  // engine-owned shard when cfg.external_sim is set (then `sim` is idle and
  // callers must drive the external engine, not tb.sim).
  sim::Simulator* const simulator;
  // Shared observability: every component reports into this registry, and
  // every flow's lifecycle lands in this flight recorder. Placed testbeds
  // use the per-shard lanes below instead (metrics_lane/flight_lane).
  obs::Registry metrics;
  obs::FlightRecorder flight;
  // Per-shard observability lanes (placed mode only; one per engine shard).
  std::vector<std::unique_ptr<obs::Registry>> shard_metrics;
  std::vector<std::unique_ptr<obs::FlightRecorder>> shard_flight;
  net::Network network;
  l4lb::L4Fabric fabric;
  std::vector<std::unique_ptr<kv::KvServer>> kv_servers;
  std::unique_ptr<kv::ReplicatingClient> kv_client;
  // Control-plane store client (controller_ha): the controllers journal and
  // contend for the lease through their own client into the same KV ring.
  std::unique_ptr<kv::ReplicatingClient> ctl_kv_client;
  std::unique_ptr<yoda::TcpStore> store;
  // Placed mode: each instance pipeline gets its own store client + TCPStore
  // on its owning shard (the shared `kv_client`/`store` above stay on the
  // controller shard); op messages hop shards via the engine's mailboxes.
  std::vector<std::unique_ptr<kv::ReplicatingClient>> instance_kv_clients;
  std::vector<std::unique_ptr<yoda::TcpStore>> instance_stores;
  std::unique_ptr<ObjectCatalog> catalog;
  std::vector<std::unique_ptr<yoda::YodaInstance>> instances;
  std::vector<std::unique_ptr<yoda::YodaInstance>> spares;
  std::vector<std::unique_ptr<baseline::ProxyInstance>> proxies;
  std::vector<std::unique_ptr<HttpServerNode>> servers;
  std::vector<std::unique_ptr<BrowserClient>> clients;
  std::unique_ptr<yoda::Controller> controller;
  // HA standby replicas (replicas 1..controllers-1); empty unless
  // controller_ha. Each sees the same fleet as replica 0.
  std::vector<std::unique_ptr<yoda::Controller>> standbys;
  // Fault-injection plane: installed as the network's fault hook, seeded from
  // cfg.seed, with crash/restart/kv-slow handlers mapped to the components
  // above. With no faults scheduled it never draws, so same-seed runs stay
  // bit-identical to pre-fault-plane builds.
  std::unique_ptr<fault::FaultPlane> faults;

 private:
  yoda::Controller* ControllerByIp(net::IpAddr ip);
  yoda::YodaInstance* InstanceByIp(net::IpAddr ip);
  HttpServerNode* ServerByIp(net::IpAddr ip);
  kv::KvServer* KvByIp(net::IpAddr ip);
  baseline::ProxyInstance* ProxyByIp(net::IpAddr ip);
};

}  // namespace workload

#endif  // SRC_WORKLOAD_TESTBED_H_
