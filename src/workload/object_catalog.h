// Web-object catalog modelled on the paper's testbed content (§7 setup):
// "10K+ objects with sizes 1K-442KB (median 46KB)", organised into pages
// (an HTML document plus embedded objects) like the university websites the
// authors crawled.

#ifndef SRC_WORKLOAD_OBJECT_CATALOG_H_
#define SRC_WORKLOAD_OBJECT_CATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/random.h"

namespace workload {

struct WebObject {
  std::string url;
  std::size_t size = 0;
  std::string content_type;
};

struct Page {
  std::string html_url;
  std::vector<std::string> embedded;  // Object URLs the page references.
};

struct CatalogConfig {
  std::size_t objects = 10'000;
  std::size_t pages = 400;
  std::size_t min_size = 1'000;
  std::size_t max_size = 442'000;
  std::size_t median_size = 46'000;
  double sigma = 1.1;  // Log-normal spread.
  int min_embedded = 2;
  int max_embedded = 12;
};

class ObjectCatalog {
 public:
  ObjectCatalog(sim::Rng& rng, CatalogConfig config = {});

  const WebObject* Find(const std::string& url) const;
  // Deterministic body bytes for an object (generated on demand).
  std::string BodyFor(const WebObject& object) const;

  const std::vector<WebObject>& objects() const { return objects_; }
  const std::vector<Page>& pages() const { return pages_; }
  const Page& PageAt(std::size_t i) const { return pages_[i % pages_.size()]; }

  std::size_t MedianSize() const;

 private:
  std::vector<WebObject> objects_;
  std::vector<Page> pages_;
  std::unordered_map<std::string, std::size_t> by_url_;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_OBJECT_CATALOG_H_
