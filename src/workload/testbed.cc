#include "src/workload/testbed.h"

#include <algorithm>
#include <cstdio>

namespace workload {

Testbed::Testbed(TestbedConfig config)
    : cfg(std::move(config)),
      sim(),
      simulator(cfg.external_sim != nullptr ? cfg.external_sim : &sim),
      network(simulator, cfg.seed ^ 0x6e6574ULL),
      fabric(simulator, &network, cfg.muxes) {
  obs::BindSimulatorGauges(metrics, *simulator);
  fabric.SetObservability(&metrics, &flight);
  network.SetLatency(net::Region::kDatacenter, net::Region::kDatacenter, cfg.dc_latency,
                     cfg.dc_jitter);
  network.SetLatency(net::Region::kDatacenter, net::Region::kInternet, cfg.internet_latency,
                     cfg.internet_jitter);
  network.SetLatency(net::Region::kInternet, net::Region::kInternet, cfg.internet_latency,
                     cfg.internet_jitter);

  // TCPStore fleet.
  for (int i = 0; i < cfg.kv_servers; ++i) {
    kv_servers.push_back(
        std::make_unique<kv::KvServer>(simulator, "kv-" + std::to_string(i), cfg.kv));
  }
  std::vector<kv::KvServer*> kv_ptrs;
  for (auto& s : kv_servers) {
    kv_ptrs.push_back(s.get());
  }
  kv::ReplicatingClientConfig kv_client_cfg = cfg.kv_client;
  kv_client_cfg.replicas = cfg.kv_replicas;
  kv_client_cfg.registry = &metrics;
  kv_client = std::make_unique<kv::ReplicatingClient>(simulator, kv_ptrs, kv_client_cfg);
  store = std::make_unique<yoda::TcpStore>(kv_client.get(), simulator, &flight, &metrics);

  if (cfg.build_catalog) {
    sim::Rng catalog_rng(cfg.seed ^ 0x636174ULL);
    catalog = std::make_unique<ObjectCatalog>(catalog_rng, cfg.catalog);
  }

  // Yoda instances (+ spares).
  for (int i = 0; i < cfg.yoda_instances + cfg.spare_instances; ++i) {
    yoda::YodaInstanceConfig icfg = cfg.instance_template;
    icfg.ip = instance_ip(i);
    icfg.registry = &metrics;
    icfg.recorder = &flight;
    auto inst = std::make_unique<yoda::YodaInstance>(simulator, &network, &fabric, store.get(),
                                                     cfg.seed ^ (0x1000ULL + i), icfg);
    if (i < cfg.yoda_instances) {
      instances.push_back(std::move(inst));
    } else {
      spares.push_back(std::move(inst));
    }
  }

  // Baseline proxies.
  for (int i = 0; i < cfg.baseline_proxies; ++i) {
    baseline::ProxyConfig pcfg = cfg.proxy_template;
    pcfg.ip = proxy_ip(i);
    proxies.push_back(
        std::make_unique<baseline::ProxyInstance>(simulator, &network, cfg.seed ^ (0x2000ULL + i),
                                                  pcfg));
  }

  // Backend web servers.
  for (int i = 0; i < cfg.backends; ++i) {
    HttpServerConfig scfg = cfg.server_template;
    scfg.ip = backend_ip(i);
    scfg.processing_delay = cfg.server_processing;
    scfg.tcp = cfg.server_tcp;
    servers.push_back(std::make_unique<HttpServerNode>(simulator, &network, catalog.get(),
                                                       cfg.seed ^ (0x3000ULL + i), scfg));
  }

  // Clients (Internet region).
  for (int i = 0; i < cfg.clients; ++i) {
    clients.push_back(
        std::make_unique<BrowserClient>(simulator, &network, client_ip(i), cfg.seed ^ (0x4000ULL + i)));
  }

  yoda::ControllerConfig ctl_cfg = cfg.controller;
  ctl_cfg.registry = &metrics;
  ctl_cfg.recorder = &flight;
  if (cfg.controller_ha) {
    ctl_kv_client = std::make_unique<kv::ReplicatingClient>(simulator, kv_ptrs, kv_client_cfg);
    ctl_cfg.ha.enabled = true;
    ctl_cfg.ha.store = ctl_kv_client.get();
    if (ctl_cfg.max_step_retries == 0) {
      ctl_cfg.max_step_retries = 5;  // HA template default: bounded retries.
    }
  }
  const int n_controllers = cfg.controller_ha ? std::max(1, cfg.controllers) : 1;
  for (int r = 0; r < n_controllers; ++r) {
    ctl_cfg.ha.self = controller_ip(r);
    auto replica = std::make_unique<yoda::Controller>(simulator, &network, &fabric, ctl_cfg);
    for (auto& inst : instances) {
      replica->AddInstance(inst.get());
    }
    for (auto& inst : spares) {
      replica->AddSpareInstance(inst.get());
    }
    for (auto& s : kv_servers) {
      replica->AddKvServer(s.get());
    }
    for (int i = 0; i < cfg.backends; ++i) {
      replica->AddBackend(backend_ip(i));
    }
    if (r == 0) {
      controller = std::move(replica);
    } else {
      standbys.push_back(std::move(replica));
    }
  }

  // Fault plane last: it installs itself as the network's fault hook and
  // needs the component lists above to route crash/restart/kv-slow events.
  faults = std::make_unique<fault::FaultPlane>(simulator, &network, cfg.seed ^ 0x66617574ULL,
                                               fault::FaultPlaneConfig{&flight});
  faults->set_crash_handler([this](net::IpAddr ip) {
    if (yoda::Controller* c = ControllerByIp(ip)) {
      // Controllers live off-network (their store client talks to the KV
      // servers directly); a crash is purely "stop acting + stop renewing".
      c->Crash();
      return;
    }
    if (yoda::YodaInstance* inst = InstanceByIp(ip)) {
      inst->Fail();
    }
    if (HttpServerNode* srv = ServerByIp(ip)) {
      srv->Fail();
    }
    if (kv::KvServer* s = KvByIp(ip)) {
      s->Fail();
    }
    if (baseline::ProxyInstance* p = ProxyByIp(ip)) {
      p->Fail();
    }
    network.SetNodeDown(ip, true);
  });
  faults->set_restart_handler([this](net::IpAddr ip, fault::FaultPlane::RestartMode mode) {
    if (yoda::Controller* c = ControllerByIp(ip)) {
      c->Restart();  // Re-enters the lease contest as a standby.
      return;
    }
    if (kv::KvServer* s = KvByIp(ip)) {
      // KV servers live off-network; both modes amount to Recover (memcached
      // restarts empty either way — RAM contents are gone).
      s->Recover();
      return;
    }
    if (mode == fault::FaultPlane::RestartMode::kCold) {
      network.RestartNode(ip);  // OnColdRestart clears endpoint state, revives.
      return;
    }
    if (yoda::YodaInstance* inst = InstanceByIp(ip)) {
      inst->Recover();
    }
    if (HttpServerNode* srv = ServerByIp(ip)) {
      srv->Recover();
    }
    if (baseline::ProxyInstance* p = ProxyByIp(ip)) {
      p->Recover();
    }
    network.SetNodeDown(ip, false);
  });
  faults->set_kv_slow_handler([this](net::IpAddr ip, sim::Duration d) {
    if (kv::KvServer* s = KvByIp(ip)) {
      s->set_response_delay(d);
    }
  });
}

yoda::Controller* Testbed::ControllerByIp(net::IpAddr ip) {
  for (int i = 0; i < controller_count(); ++i) {
    if (controller_ip(i) == ip) {
      return ControllerAt(i);
    }
  }
  return nullptr;
}

void Testbed::StartAllControllers() {
  for (int i = 0; i < controller_count(); ++i) {
    ControllerAt(i)->Start();
  }
}

yoda::Controller* Testbed::LeaderController() {
  for (int i = 0; i < controller_count(); ++i) {
    yoda::Controller* c = ControllerAt(i);
    if (!c->crashed() && c->ActingLeader()) {
      return c;
    }
  }
  return nullptr;
}

yoda::Controller* Testbed::AwaitLeader(sim::Duration max_wait) {
  const sim::Time deadline = simulator->now() + max_wait;
  while (LeaderController() == nullptr && simulator->now() < deadline) {
    simulator->RunUntil(std::min(deadline, simulator->now() + sim::Msec(10)));
  }
  return LeaderController();
}

yoda::YodaInstance* Testbed::InstanceByIp(net::IpAddr ip) {
  for (auto& inst : instances) {
    if (inst->ip() == ip) {
      return inst.get();
    }
  }
  for (auto& inst : spares) {
    if (inst->ip() == ip) {
      return inst.get();
    }
  }
  return nullptr;
}

HttpServerNode* Testbed::ServerByIp(net::IpAddr ip) {
  for (auto& srv : servers) {
    if (srv->ip() == ip) {
      return srv.get();
    }
  }
  return nullptr;
}

kv::KvServer* Testbed::KvByIp(net::IpAddr ip) {
  for (int i = 0; i < cfg.kv_servers; ++i) {
    if (kv_ip(i) == ip) {
      return kv_servers[static_cast<std::size_t>(i)].get();
    }
  }
  return nullptr;
}

baseline::ProxyInstance* Testbed::ProxyByIp(net::IpAddr ip) {
  for (auto& p : proxies) {
    if (p->ip() == ip) {
      return p.get();
    }
  }
  return nullptr;
}

std::vector<rules::Rule> Testbed::EqualSplitRules(int first_backend, int count,
                                                  const std::string& name,
                                                  const std::string& url_glob) {
  rules::Rule r;
  r.name = name;
  r.priority = 1;
  r.match.url_glob = url_glob;
  r.action.type = rules::ActionType::kWeightedSplit;
  for (int i = 0; i < count; ++i) {
    r.action.backends.push_back(rules::Backend{backend_ip(first_backend + i), 80, 1.0});
  }
  return {r};
}

void Testbed::DefineDefaultVipAndStart() {
  controller->DefineVip(vip(0), 80, EqualSplitRules(0, cfg.backends));
  controller->Start();
}

void Testbed::InstallProxyRules(const std::vector<rules::Rule>& proxy_rules) {
  for (auto& p : proxies) {
    p->InstallRules(proxy_rules);
  }
}

void Testbed::PrintMetricsSnapshot(const char* title) const {
  std::printf("\n--- %s ---\n%s", title, metrics.TextTable().c_str());
}

void Testbed::FailInstance(int i) {
  instances[static_cast<std::size_t>(i)]->Fail();
  network.SetNodeDown(instance_ip(i), true);
}

void Testbed::RecoverInstance(int i) {
  instances[static_cast<std::size_t>(i)]->Recover();
  network.SetNodeDown(instance_ip(i), false);
}

void Testbed::FailProxy(int i) {
  proxies[static_cast<std::size_t>(i)]->Fail();
  network.SetNodeDown(proxy_ip(i), true);
}

void Testbed::FailBackend(int i) {
  servers[static_cast<std::size_t>(i)]->Fail();
  network.SetNodeDown(backend_ip(i), true);
}

void Testbed::RecoverBackend(int i) {
  servers[static_cast<std::size_t>(i)]->Recover();
  network.SetNodeDown(backend_ip(i), false);
}

void Testbed::FailKvServer(int i) { kv_servers[static_cast<std::size_t>(i)]->Fail(); }

}  // namespace workload
