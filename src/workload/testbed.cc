#include "src/workload/testbed.h"

#include <algorithm>
#include <cstdio>

namespace workload {

Testbed::Testbed(TestbedConfig config)
    : cfg(std::move(config)),
      sim(),
      // Placed: the testbed's "home" simulator is shard 0 (Network lane 0
      // must live there); the fabric is constructed on ITS owning shard's
      // simulator so its timers and packets run where its state lives.
      simulator(cfg.engine != nullptr
                    ? &cfg.engine->shard(0)
                    : (cfg.external_sim != nullptr ? cfg.external_sim : &sim)),
      network(simulator, cfg.seed ^ 0x6e6574ULL),
      fabric(cfg.engine != nullptr ? &cfg.engine->shard(cfg.placement.fabric_shard)
                                   : simulator,
             &network, cfg.muxes) {
  if (cfg.engine != nullptr) {
    cfg.placement.shards = cfg.engine->shards();
    // Per-shard observability lanes: every component reports into its own
    // shard's registry/recorder so no two worker threads share a sink.
    for (int s = 0; s < cfg.placement.shards; ++s) {
      shard_metrics.push_back(std::make_unique<obs::Registry>());
      shard_flight.push_back(std::make_unique<obs::FlightRecorder>());
      obs::BindSimulatorGauges(*shard_metrics.back(), cfg.engine->shard(s));
    }
    // Resolver before any Attach (Attach stamps the endpoint's owner), then
    // the engine bind (replicates the endpoint map onto one lane per shard).
    network.SetShardResolver([this](net::IpAddr ip) { return OwnerShardOf(ip); });
    network.BindEngine(cfg.engine);
    fabric.BindShard(cfg.engine, cfg.placement.fabric_shard);
  } else {
    obs::BindSimulatorGauges(metrics, *simulator);
  }
  const bool placed_mode = cfg.engine != nullptr;
  const int ctl_shard = cfg.placement.controller_shard;
  fabric.SetObservability(
      placed_mode ? &metrics_lane(cfg.placement.fabric_shard) : &metrics,
      placed_mode ? &flight_lane(cfg.placement.fabric_shard) : &flight);
  network.SetLatency(net::Region::kDatacenter, net::Region::kDatacenter, cfg.dc_latency,
                     cfg.dc_jitter);
  network.SetLatency(net::Region::kDatacenter, net::Region::kInternet, cfg.internet_latency,
                     cfg.internet_jitter);
  network.SetLatency(net::Region::kInternet, net::Region::kInternet, cfg.internet_latency,
                     cfg.internet_jitter);

  // TCPStore fleet: each replica runs on its owning shard.
  for (int i = 0; i < cfg.kv_servers; ++i) {
    kv_servers.push_back(std::make_unique<kv::KvServer>(
        SimFor(placed_mode ? cfg.placement.KvShard(i) : 0), "kv-" + std::to_string(i),
        cfg.kv));
    if (placed_mode) {
      kv_servers.back()->audit().Bind(cfg.placement.KvShard(i));
    }
  }
  std::vector<kv::KvServer*> kv_ptrs;
  for (auto& s : kv_servers) {
    kv_ptrs.push_back(s.get());
  }
  // Placed: op messages to a replica hop to its shard and answers hop home.
  std::function<int(const kv::KvServer*)> kv_shard_of;
  if (placed_mode) {
    kv_shard_of = [this](const kv::KvServer* s) {
      for (std::size_t i = 0; i < kv_servers.size(); ++i) {
        if (kv_servers[i].get() == s) {
          return cfg.placement.KvShard(static_cast<int>(i));
        }
      }
      return cfg.placement.controller_shard;
    };
  }
  kv::ReplicatingClientConfig kv_client_cfg = cfg.kv_client;
  kv_client_cfg.replicas = cfg.kv_replicas;
  kv_client_cfg.registry = placed_mode ? &metrics_lane(ctl_shard) : &metrics;
  if (placed_mode) {
    kv_client_cfg.engine = cfg.engine;
    kv_client_cfg.home_shard = ctl_shard;
    kv_client_cfg.shard_of = kv_shard_of;
  }
  // The shared client + store live on the controller shard (instances get
  // their own, below, when placed).
  kv_client =
      std::make_unique<kv::ReplicatingClient>(SimFor(ctl_shard), kv_ptrs, kv_client_cfg);
  store = std::make_unique<yoda::TcpStore>(
      kv_client.get(), SimFor(ctl_shard),
      placed_mode ? &flight_lane(ctl_shard) : &flight,
      placed_mode ? &metrics_lane(ctl_shard) : &metrics);

  if (cfg.build_catalog) {
    sim::Rng catalog_rng(cfg.seed ^ 0x636174ULL);
    catalog = std::make_unique<ObjectCatalog>(catalog_rng, cfg.catalog);
  }

  // Yoda instances (+ spares). Placed: each pipeline runs on its owning
  // shard with its OWN store client (its KV op bookkeeping and timers must
  // live on its shard, not the controller's).
  for (int i = 0; i < cfg.yoda_instances + cfg.spare_instances; ++i) {
    const int shard = placed_mode ? cfg.placement.InstanceShard(i) : 0;
    yoda::YodaInstanceConfig icfg = cfg.instance_template;
    icfg.ip = instance_ip(i);
    icfg.registry = placed_mode ? &metrics_lane(shard) : &metrics;
    icfg.recorder = placed_mode ? &flight_lane(shard) : &flight;
    yoda::TcpStore* inst_store = store.get();
    if (placed_mode) {
      kv::ReplicatingClientConfig icc = kv_client_cfg;
      icc.registry = &metrics_lane(shard);
      icc.home_shard = shard;
      instance_kv_clients.push_back(
          std::make_unique<kv::ReplicatingClient>(SimFor(shard), kv_ptrs, icc));
      instance_stores.push_back(std::make_unique<yoda::TcpStore>(
          instance_kv_clients.back().get(), SimFor(shard), &flight_lane(shard),
          &metrics_lane(shard)));
      inst_store = instance_stores.back().get();
    }
    auto inst = std::make_unique<yoda::YodaInstance>(SimFor(shard), &network, &fabric,
                                                     inst_store,
                                                     cfg.seed ^ (0x1000ULL + i), icfg);
    if (placed_mode) {
      inst->audit().Bind(shard);
    }
    if (i < cfg.yoda_instances) {
      instances.push_back(std::move(inst));
    } else {
      spares.push_back(std::move(inst));
    }
  }

  // Baseline proxies.
  for (int i = 0; i < cfg.baseline_proxies; ++i) {
    baseline::ProxyConfig pcfg = cfg.proxy_template;
    pcfg.ip = proxy_ip(i);
    proxies.push_back(std::make_unique<baseline::ProxyInstance>(
        SimFor(placed_mode ? cfg.placement.ProxyShard(i) : 0), &network,
        cfg.seed ^ (0x2000ULL + i), pcfg));
  }

  // Backend web servers.
  for (int i = 0; i < cfg.backends; ++i) {
    HttpServerConfig scfg = cfg.server_template;
    scfg.ip = backend_ip(i);
    scfg.processing_delay = cfg.server_processing;
    scfg.tcp = cfg.server_tcp;
    servers.push_back(std::make_unique<HttpServerNode>(
        SimFor(placed_mode ? cfg.placement.BackendShard(i) : 0), &network, catalog.get(),
        cfg.seed ^ (0x3000ULL + i), scfg));
    if (placed_mode) {
      servers.back()->audit().Bind(cfg.placement.BackendShard(i));
    }
  }

  // Clients (Internet region).
  for (int i = 0; i < cfg.clients; ++i) {
    clients.push_back(std::make_unique<BrowserClient>(
        SimFor(placed_mode ? cfg.placement.ClientShard(i) : 0), &network, client_ip(i),
        cfg.seed ^ (0x4000ULL + i)));
    if (placed_mode) {
      clients.back()->audit().Bind(cfg.placement.ClientShard(i));
    }
  }

  yoda::ControllerConfig ctl_cfg = cfg.controller;
  ctl_cfg.registry = placed_mode ? &metrics_lane(ctl_shard) : &metrics;
  ctl_cfg.recorder = placed_mode ? &flight_lane(ctl_shard) : &flight;
  if (placed_mode) {
    // Cross-shard control plane: probe health only through the network's
    // shard-replicated down flags, and route every instance-state write
    // (rules, backend health, scrubs) onto the instance's owning shard.
    ctl_cfg.probe_network_only = true;
    ctl_cfg.instance_down = [this](const yoda::YodaInstance* inst) {
      return network.IsDown(inst->ip());
    };
    ctl_cfg.run_on_instance = [this](yoda::YodaInstance* inst, std::function<void()> fn) {
      RunOnOwner(OwnerShardOf(inst->ip()), std::move(fn));
    };
  }
  if (cfg.controller_ha) {
    ctl_kv_client = std::make_unique<kv::ReplicatingClient>(SimFor(ctl_shard), kv_ptrs,
                                                            kv_client_cfg);
    ctl_cfg.ha.enabled = true;
    ctl_cfg.ha.store = ctl_kv_client.get();
    if (ctl_cfg.max_step_retries == 0) {
      ctl_cfg.max_step_retries = 5;  // HA template default: bounded retries.
    }
  }
  const int n_controllers = cfg.controller_ha ? std::max(1, cfg.controllers) : 1;
  for (int r = 0; r < n_controllers; ++r) {
    ctl_cfg.ha.self = controller_ip(r);
    auto replica = std::make_unique<yoda::Controller>(SimFor(ctl_shard), &network, &fabric,
                                                      ctl_cfg);
    for (auto& inst : instances) {
      replica->AddInstance(inst.get());
    }
    for (auto& inst : spares) {
      replica->AddSpareInstance(inst.get());
    }
    for (auto& s : kv_servers) {
      replica->AddKvServer(s.get());
    }
    for (int i = 0; i < cfg.backends; ++i) {
      replica->AddBackend(backend_ip(i));
    }
    if (r == 0) {
      controller = std::move(replica);
    } else {
      standbys.push_back(std::move(replica));
    }
  }

  // Fault plane last: it installs itself as the network's fault hook and
  // needs the component lists above to route crash/restart/kv-slow events.
  // Placed: the fault plane is conducted from the controller shard (the
  // scenario timeline fires there), so its timers and recorder live there.
  faults = std::make_unique<fault::FaultPlane>(
      SimFor(ctl_shard), &network, cfg.seed ^ 0x66617574ULL,
      fault::FaultPlaneConfig{placed_mode ? &flight_lane(ctl_shard) : &flight});
  // Placed: component mutations are routed to the component's owning shard
  // (RunOnOwner — inline and byte-identical when unplaced); SetNodeDown
  // already replicates to every lane internally.
  faults->set_crash_handler([this](net::IpAddr ip) {
    if (ControllerByIp(ip) != nullptr) {
      // Controllers live off-network (their store client talks to the KV
      // servers directly); a crash is purely "stop acting + stop renewing".
      RunOnOwner(cfg.placement.controller_shard,
                 [this, ip]() { ControllerByIp(ip)->Crash(); });
      return;
    }
    RunOnOwner(OwnerShardOf(ip), [this, ip]() {
      if (yoda::YodaInstance* inst = InstanceByIp(ip)) {
        inst->Fail();
      }
      if (HttpServerNode* srv = ServerByIp(ip)) {
        srv->Fail();
      }
      if (kv::KvServer* s = KvByIp(ip)) {
        s->Fail();
      }
      if (baseline::ProxyInstance* p = ProxyByIp(ip)) {
        p->Fail();
      }
    });
    network.SetNodeDown(ip, true);
  });
  faults->set_restart_handler([this](net::IpAddr ip, fault::FaultPlane::RestartMode mode) {
    if (ControllerByIp(ip) != nullptr) {
      // Re-enters the lease contest as a standby.
      RunOnOwner(cfg.placement.controller_shard,
                 [this, ip]() { ControllerByIp(ip)->Restart(); });
      return;
    }
    if (KvByIp(ip) != nullptr) {
      // KV servers live off-network; both modes amount to Recover (memcached
      // restarts empty either way — RAM contents are gone).
      RunOnOwner(OwnerShardOf(ip), [this, ip]() { KvByIp(ip)->Recover(); });
      return;
    }
    if (mode == fault::FaultPlane::RestartMode::kCold) {
      network.RestartNode(ip);  // OnColdRestart clears endpoint state, revives.
      return;
    }
    RunOnOwner(OwnerShardOf(ip), [this, ip]() {
      if (yoda::YodaInstance* inst = InstanceByIp(ip)) {
        inst->Recover();
      }
      if (HttpServerNode* srv = ServerByIp(ip)) {
        srv->Recover();
      }
      if (baseline::ProxyInstance* p = ProxyByIp(ip)) {
        p->Recover();
      }
    });
    network.SetNodeDown(ip, false);
  });
  faults->set_kv_slow_handler([this](net::IpAddr ip, sim::Duration d) {
    RunOnOwner(OwnerShardOf(ip), [this, ip, d]() {
      if (kv::KvServer* s = KvByIp(ip)) {
        s->set_response_delay(d);
      }
    });
  });
}

int Testbed::OwnerShardOf(net::IpAddr ip) const {
  if (cfg.engine == nullptr) {
    return 0;
  }
  const sim::IntraPlacement& pl = cfg.placement;
  // Testbed address plan: the second octet identifies the component kind,
  // the host octet its index (see the header comment).
  const int subnet = static_cast<int>((ip >> 16) & 0xff);
  const int idx = static_cast<int>(ip & 0xff) - 1;
  switch (subnet) {
    case 0:
      return pl.controller_shard;
    case 1:
      return pl.InstanceShard(idx);
    case 2:
      return pl.KvShard(idx);
    case 3:
      return pl.BackendShard(idx);
    case 4:
      return pl.ProxyShard(idx);
    case 9:
      return pl.ClientShard(idx);
    case 200:
      return pl.fabric_shard;
    default:
      return pl.controller_shard;
  }
}

void Testbed::RunOnOwner(int shard, std::function<void()> fn) {
  if (cfg.engine != nullptr) {
    const int cur = sim::ShardedSim::current_shard();
    if (cur >= 0 && cur != shard) {
      cfg.engine->CallOn(shard, std::move(fn));
      return;
    }
  }
  fn();
}

yoda::Controller* Testbed::ControllerByIp(net::IpAddr ip) {
  for (int i = 0; i < controller_count(); ++i) {
    if (controller_ip(i) == ip) {
      return ControllerAt(i);
    }
  }
  return nullptr;
}

void Testbed::StartAllControllers() {
  for (int i = 0; i < controller_count(); ++i) {
    ControllerAt(i)->Start();
  }
}

yoda::Controller* Testbed::LeaderController() {
  for (int i = 0; i < controller_count(); ++i) {
    yoda::Controller* c = ControllerAt(i);
    if (!c->crashed() && c->ActingLeader()) {
      return c;
    }
  }
  return nullptr;
}

yoda::Controller* Testbed::AwaitLeader(sim::Duration max_wait) {
  const sim::Time deadline = simulator->now() + max_wait;
  while (LeaderController() == nullptr && simulator->now() < deadline) {
    const sim::Time step = std::min(deadline, simulator->now() + sim::Msec(10));
    if (cfg.engine != nullptr) {
      cfg.engine->RunUntil(step);  // Placed: every shard must advance.
    } else {
      simulator->RunUntil(step);
    }
  }
  return LeaderController();
}

yoda::YodaInstance* Testbed::InstanceByIp(net::IpAddr ip) {
  for (auto& inst : instances) {
    if (inst->ip() == ip) {
      return inst.get();
    }
  }
  for (auto& inst : spares) {
    if (inst->ip() == ip) {
      return inst.get();
    }
  }
  return nullptr;
}

HttpServerNode* Testbed::ServerByIp(net::IpAddr ip) {
  for (auto& srv : servers) {
    if (srv->ip() == ip) {
      return srv.get();
    }
  }
  return nullptr;
}

kv::KvServer* Testbed::KvByIp(net::IpAddr ip) {
  for (int i = 0; i < cfg.kv_servers; ++i) {
    if (kv_ip(i) == ip) {
      return kv_servers[static_cast<std::size_t>(i)].get();
    }
  }
  return nullptr;
}

baseline::ProxyInstance* Testbed::ProxyByIp(net::IpAddr ip) {
  for (auto& p : proxies) {
    if (p->ip() == ip) {
      return p.get();
    }
  }
  return nullptr;
}

std::vector<rules::Rule> Testbed::EqualSplitRules(int first_backend, int count,
                                                  const std::string& name,
                                                  const std::string& url_glob) {
  rules::Rule r;
  r.name = name;
  r.priority = 1;
  r.match.url_glob = url_glob;
  r.action.type = rules::ActionType::kWeightedSplit;
  for (int i = 0; i < count; ++i) {
    r.action.backends.push_back(rules::Backend{backend_ip(first_backend + i), 80, 1.0});
  }
  return {r};
}

void Testbed::DefineDefaultVipAndStart() {
  controller->DefineVip(vip(0), 80, EqualSplitRules(0, cfg.backends));
  controller->Start();
}

void Testbed::InstallProxyRules(const std::vector<rules::Rule>& proxy_rules) {
  for (auto& p : proxies) {
    p->InstallRules(proxy_rules);
  }
}

void Testbed::PrintMetricsSnapshot(const char* title) const {
  std::printf("\n--- %s ---\n%s", title, metrics.TextTable().c_str());
}

void Testbed::FailInstance(int i) {
  yoda::YodaInstance* inst = instances[static_cast<std::size_t>(i)].get();
  RunOnOwner(OwnerShardOf(instance_ip(i)), [inst]() { inst->Fail(); });
  network.SetNodeDown(instance_ip(i), true);
}

void Testbed::RecoverInstance(int i) {
  yoda::YodaInstance* inst = instances[static_cast<std::size_t>(i)].get();
  RunOnOwner(OwnerShardOf(instance_ip(i)), [inst]() { inst->Recover(); });
  network.SetNodeDown(instance_ip(i), false);
}

void Testbed::FailProxy(int i) {
  baseline::ProxyInstance* p = proxies[static_cast<std::size_t>(i)].get();
  RunOnOwner(OwnerShardOf(proxy_ip(i)), [p]() { p->Fail(); });
  network.SetNodeDown(proxy_ip(i), true);
}

void Testbed::FailBackend(int i) {
  HttpServerNode* srv = servers[static_cast<std::size_t>(i)].get();
  RunOnOwner(OwnerShardOf(backend_ip(i)), [srv]() { srv->Fail(); });
  network.SetNodeDown(backend_ip(i), true);
}

void Testbed::RecoverBackend(int i) {
  HttpServerNode* srv = servers[static_cast<std::size_t>(i)].get();
  RunOnOwner(OwnerShardOf(backend_ip(i)), [srv]() { srv->Recover(); });
  network.SetNodeDown(backend_ip(i), false);
}

void Testbed::FailKvServer(int i) {
  kv::KvServer* s = kv_servers[static_cast<std::size_t>(i)].get();
  RunOnOwner(OwnerShardOf(kv_ip(i)), [s]() { s->Fail(); });
}

}  // namespace workload
