// Browser-emulating client (paper §7 setup: "a Python client that emulates
// web-browser [behaviour] or the Apache benchmark tool").
//
// Provides:
//  - FetchObject: one object over one connection, with a browser-style HTTP
//    timeout and optional retry (the HAProxy-retry / noretry modes of
//    Fig 12);
//  - FetchPage: HTML plus embedded objects fetched sequentially, reporting
//    page-load time (Table 1);
//  - FetchSequence: several requests over one keep-alive HTTP/1.1
//    connection (exercises Yoda's re-switching, §5.2);
//  - OpenLoopGenerator: fixed-rate request stream for the latency/CPU
//    experiments (Fig 9, 13).

#ifndef SRC_WORKLOAD_BROWSER_CLIENT_H_
#define SRC_WORKLOAD_BROWSER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/http/parser.h"
#include "src/net/network.h"
#include "src/net/tcp_endpoint.h"
#include "src/sim/metrics.h"
#include "src/sim/placement.h"
#include "src/sim/random.h"

namespace workload {

struct FetchOptions {
  std::string host = "mysite.com";
  std::string version = "HTTP/1.0";
  std::string cookie;  // Optional Cookie header value.
  sim::Duration http_timeout = sim::Sec(30);
  int retries = 0;   // Browser retries after timeout/reset.
  bool use_tls = false;  // HTTPS: handshake + encrypted request/response.
  // FetchSequence only: send every request immediately (HTTP/1.1
  // pipelining) instead of waiting for each response.
  bool pipeline = false;
};

struct FetchResult {
  bool ok = false;
  bool timed_out = false;
  bool reset = false;
  int retries_used = 0;
  sim::Duration latency = 0;
  std::size_t bytes = 0;
  int status = 0;
  std::string tls_certificate;  // Certificate presented (TLS fetches).
};

class BrowserClient : public net::Node {
 public:
  using FetchCallback = std::function<void(const FetchResult&)>;

  BrowserClient(sim::Simulator* simulator, net::Network* network, net::IpAddr ip,
                std::uint64_t seed);
  ~BrowserClient() override;

  net::IpAddr ip() const { return ip_; }

  void FetchObject(net::IpAddr target, net::Port port, const std::string& url,
                   const FetchOptions& options, FetchCallback done);

  // HTML first, then each embedded object, sequentially; the result reports
  // total page-load latency and aggregates failures.
  void FetchPage(net::IpAddr target, net::Port port, const std::string& html_url,
                 const std::vector<std::string>& embedded, const FetchOptions& options,
                 FetchCallback done);

  // All URLs over ONE keep-alive connection; `done` fires once per URL (in
  // order) and the last result carries the cumulative latency.
  void FetchSequence(net::IpAddr target, net::Port port, const std::vector<std::string>& urls,
                     const FetchOptions& options, std::function<void(std::vector<FetchResult>)> done);

  void HandlePacket(const net::Packet& packet) override;

  net::TcpConfig& tcp_config() { return tcp_; }

  // Placed testbeds bind this to the client's owning shard; FetchObject and
  // packet delivery assert in debug builds that they execute there.
  sim::ShardOwnershipAudit& audit() { return audit_; }

 private:
  sim::ShardOwnershipAudit audit_;

  struct Fetch;
  struct PageFetch;

  // Both take the fetch by value: callers are often callbacks OWNED by the
  // fetch's current TcpEndpoint, and StartAttempt replaces that endpoint —
  // destroying the calling lambda and the shared_ptr it captured. The by-value
  // copy keeps the fetch alive through its own re-arming.
  void StartAttempt(std::shared_ptr<Fetch> fetch);
  void FinishFetch(std::shared_ptr<Fetch> fetch, FetchResult result);
  // Advances a FetchPage chain by one object. Callbacks hold the PageFetch
  // state; the state holds no callbacks, so no ownership cycle forms.
  void PageStep(const std::shared_ptr<PageFetch>& page, const FetchResult& result);
  net::Port NextPort();

  sim::Simulator* sim_;
  net::Network* net_;
  net::IpAddr ip_;
  sim::Rng rng_;
  net::TcpConfig tcp_;
  net::Port next_port_ = 10'000;
  std::unordered_map<net::FiveTuple, std::shared_ptr<Fetch>, net::FiveTupleHash> demux_;
};

// Open-loop fixed-rate request source over a pool of clients.
class OpenLoopGenerator {
 public:
  struct Config {
    double requests_per_second = 1000;
    sim::Duration duration = sim::Sec(10);
    net::IpAddr target = 0;
    net::Port port = 80;
    std::vector<std::string> urls;
    FetchOptions fetch;
    bool poisson = true;
  };

  OpenLoopGenerator(sim::Simulator* simulator, std::vector<BrowserClient*> clients,
                    std::uint64_t seed, Config config);

  void Start();

  const sim::Histogram& latency_ms() const { return latency_ms_; }
  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }

 private:
  void ScheduleNext(sim::Time when);

  sim::Simulator* sim_;
  std::vector<BrowserClient*> clients_;
  sim::Rng rng_;
  Config cfg_;
  sim::Time end_time_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  sim::Histogram latency_ms_;
};

}  // namespace workload

#endif  // SRC_WORKLOAD_BROWSER_CLIENT_H_
