// Cell-sharded open-loop fetch load: the Fig 13-shaped e2e workload run as
// kScenarioCells independent cells (one full testbed per sim::ShardedSim
// shard, each serving 1/kScenarioCells of the aggregate rate) executed by W
// worker threads. The scalability benches use this to measure multi-core
// headroom; the flow outcome totals are byte-identical for any W.

#ifndef SRC_WORKLOAD_PARALLEL_LOAD_H_
#define SRC_WORKLOAD_PARALLEL_LOAD_H_

#include <cstdint>

#include "src/sim/time.h"
#include "src/workload/testbed.h"

namespace workload {

struct ParallelLoadResult {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  int cells = 0;
  int workers = 0;
};

// Builds kScenarioCells testbeds from `cell_template` (seeds derived per
// cell), defines the default VIP on each, and drives `aggregate_rate`
// fetches/sec split evenly across the cells for `duration` of simulated
// time. `workers` is clamped to [1, kScenarioCells].
ParallelLoadResult RunShardedFetchLoad(const TestbedConfig& cell_template,
                                       double aggregate_rate, sim::Duration duration,
                                       int workers);

}  // namespace workload

#endif  // SRC_WORKLOAD_PARALLEL_LOAD_H_
