#include "src/workload/parallel_load.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/sharded_sim.h"
#include "src/workload/browser_client.h"
#include "src/workload/scenario.h"

namespace workload {
namespace {

// Per-cell generator state; only the cell's owning shard touches it while the
// engine runs.
struct Cell {
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<sim::Rng> rng;
  std::vector<std::string> urls;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double rate = 0;
  sim::Time end = 0;
  std::function<void(sim::Time)> schedule;
};

}  // namespace

ParallelLoadResult RunShardedFetchLoad(const TestbedConfig& cell_template,
                                       double aggregate_rate, sim::Duration duration,
                                       int workers) {
  sim::ShardedSim::Config ecfg;
  ecfg.shards = kScenarioCells;
  ecfg.workers = workers;
  sim::ShardedSim engine(ecfg);

  std::vector<std::unique_ptr<Cell>> cells;
  for (int c = 0; c < kScenarioCells; ++c) {
    TestbedConfig cfg = cell_template;
    cfg.external_sim = &engine.shard(c);
    cfg.seed = cell_template.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(c);
    auto cell = std::make_unique<Cell>();
    cell->tb = std::make_unique<Testbed>(cfg);
    cell->tb->DefineDefaultVipAndStart();
    cell->rng = std::make_unique<sim::Rng>(5 ^ cfg.seed);
    for (const auto& o : cell->tb->catalog->objects()) {
      cell->urls.push_back(o.url);
    }
    cell->rate = aggregate_rate / kScenarioCells;
    cell->end = duration;
    Cell* cs = cell.get();
    cs->schedule = [cs](sim::Time when) {
      if (when > cs->end) {
        return;
      }
      cs->tb->simulator->At(when, [cs]() {
        Testbed& tb = *cs->tb;
        sim::Rng& rng = *cs->rng;
        auto* client = tb.clients[static_cast<std::size_t>(rng.UniformInt(
                                      0, static_cast<std::int64_t>(tb.clients.size()) - 1))]
                           .get();
        const std::string& url = cs->urls[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(cs->urls.size()) - 1))];
        client->FetchObject(tb.vip(), 80, url, {}, [cs](const FetchResult& r) {
          if (r.ok) {
            ++cs->ok;
          } else {
            ++cs->failed;
          }
        });
        cs->schedule(tb.simulator->now() +
                     sim::FromSeconds(rng.Exponential(1.0 / cs->rate)));
      });
    };
    cs->schedule(sim::Msec(1));
    cells.push_back(std::move(cell));
  }

  engine.Run();

  ParallelLoadResult result;
  result.cells = kScenarioCells;
  result.workers = engine.workers();
  for (auto& cell : cells) {
    result.ok += cell->ok;
    result.failed += cell->failed;
  }
  return result;
}

}  // namespace workload
