// Byte-level codec: Packet <-> IPv4 + TCP headers with internet checksums.
//
// The simulator moves Packet structs directly for speed, but TCPStore values
// and the wire tests use this codec to guarantee the structs carry exactly
// what real headers can carry (no hidden side-channel state). The Yoda flow
// state codec (src/core/flow_state.h) reuses the byte readers/writers here.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/net/packet.h"

namespace net {

// Big-endian primitive writers/readers over a byte vector.
class ByteWriter {
 public:
  void U8(std::uint8_t v);
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void Bytes(const std::string& s);
  // Length-prefixed string (u32 length).
  void Str(const std::string& s);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::optional<std::uint8_t> U8();
  std::optional<std::uint16_t> U16();
  std::optional<std::uint32_t> U32();
  std::optional<std::uint64_t> U64();
  std::optional<std::string> Bytes(std::size_t n);
  std::optional<std::string> Str();

  bool AtEnd() const { return pos_ == buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

// RFC 1071 internet checksum over a byte range.
std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len);

// Serializes to a full IPv4 (20 B, no options) + TCP (20 B, no options)
// datagram with valid IPv4 header checksum and TCP pseudo-header checksum.
std::vector<std::uint8_t> SerializePacket(const Packet& p);

// Parses and validates a datagram produced by SerializePacket. Returns
// nullopt and fills `error` (if non-null) on malformed input or bad checksum.
std::optional<Packet> ParsePacket(const std::vector<std::uint8_t>& bytes,
                                  std::string* error = nullptr);

}  // namespace net

#endif  // SRC_NET_WIRE_H_
