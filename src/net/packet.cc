#include "src/net/packet.h"

#include <cstdio>

namespace net {

std::string IpToString(IpAddr ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff, (ip >> 16) & 0xff,
                (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

std::string FiveTuple::ToString() const {
  return IpToString(src) + ":" + std::to_string(sport) + "->" + IpToString(dst) + ":" +
         std::to_string(dport);
}

std::string Packet::ToString() const {
  std::string f;
  if (syn()) {
    f += "S";
  }
  if (ack_flag()) {
    f += "A";
  }
  if (fin()) {
    f += "F";
  }
  if (rst()) {
    f += "R";
  }
  if (has(kPsh)) {
    f += "P";
  }
  return tuple().ToString() + " [" + f + "] seq=" + std::to_string(seq) +
         " ack=" + std::to_string(ack) + " len=" + std::to_string(payload.size());
}

Packet MakeSyn(IpAddr src, Port sport, IpAddr dst, Port dport, std::uint32_t isn) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.sport = sport;
  p.dport = dport;
  p.seq = isn;
  p.flags = kSyn;
  return p;
}

Packet MakeSynAck(const Packet& syn, std::uint32_t isn) {
  Packet p;
  p.src = syn.dst;
  p.dst = syn.src;
  p.sport = syn.dport;
  p.dport = syn.sport;
  p.seq = isn;
  p.ack = syn.seq + 1;
  p.flags = kSyn | kAck;
  return p;
}

Packet MakeAck(IpAddr src, Port sport, IpAddr dst, Port dport, std::uint32_t seq,
               std::uint32_t ack) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.sport = sport;
  p.dport = dport;
  p.seq = seq;
  p.ack = ack;
  p.flags = kAck;
  return p;
}

Packet MakeRst(const Packet& in_reply_to) {
  Packet p;
  p.src = in_reply_to.dst;
  p.dst = in_reply_to.src;
  p.sport = in_reply_to.dport;
  p.dport = in_reply_to.sport;
  p.seq = in_reply_to.ack;
  p.ack = in_reply_to.seq + in_reply_to.SeqSpace();
  p.flags = kRst | kAck;
  return p;
}

}  // namespace net
