#include "src/net/tcp_endpoint.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace net {

const char* TcpStateName(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynRcvd:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kClosing:
      return "CLOSING";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
    case TcpState::kReset:
      return "RESET";
  }
  return "?";
}

TcpEndpoint::TcpEndpoint(sim::Simulator* simulator, PacketSink sink, TcpConfig config)
    : sim_(simulator), sink_(std::move(sink)), cfg_(config) {}

TcpEndpoint::~TcpEndpoint() {
  CancelRto();
  time_wait_timer_.Cancel();
}

void TcpEndpoint::Emit(Packet p) {
  ++stats_.segments_sent;
  stats_.bytes_sent += p.payload.size();
  if (p.cookie == 0) {
    p.cookie = echo_cookie_;  // Timestamp-option echo of the peer's token.
  }
  sink_(std::move(p));
}

void TcpEndpoint::Connect(IpAddr self, Port sport, IpAddr peer, Port dport, std::uint32_t isn) {
  assert(state_ == TcpState::kClosed);
  self_ = self;
  sport_ = sport;
  peer_ = peer;
  dport_ = dport;
  snd_isn_ = isn;
  snd_una_ = isn;
  snd_nxt_ = isn + 1;  // SYN consumes one sequence number.
  state_ = TcpState::kSynSent;
  cwnd_ = cfg_.initial_cwnd_segments;
  retries_ = 0;
  Emit(MakeSyn(self_, sport_, peer_, dport_, snd_isn_));
  ArmRto(cfg_.syn_rto);
}

void TcpEndpoint::AcceptFrom(const Packet& syn, std::uint32_t isn) {
  assert(state_ == TcpState::kClosed);
  assert(syn.syn() && !syn.ack_flag());
  self_ = syn.dst;
  sport_ = syn.dport;
  peer_ = syn.src;
  dport_ = syn.sport;
  rcv_isn_ = syn.seq;
  rcv_nxt_ = syn.seq + 1;
  snd_isn_ = isn;
  snd_una_ = isn;
  snd_nxt_ = isn + 1;
  state_ = TcpState::kSynRcvd;
  cwnd_ = cfg_.initial_cwnd_segments;
  retries_ = 0;
  Emit(MakeSynAck(syn, snd_isn_));
  ArmRto(cfg_.syn_rto);
}

void TcpEndpoint::Send(std::string data) {
  if (state_ == TcpState::kClosed || state_ == TcpState::kReset || close_requested_) {
    return;
  }
  sendq_ += data;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    TrySendData();
  }
}

void TcpEndpoint::Close() {
  if (close_requested_ || state_ == TcpState::kClosed || state_ == TcpState::kReset) {
    return;
  }
  close_requested_ = true;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait ||
      state_ == TcpState::kSynRcvd) {
    MaybeSendFin();
  }
}

void TcpEndpoint::Abort() {
  CancelRto();
  if (state_ != TcpState::kClosed && state_ != TcpState::kReset) {
    Packet rst;
    rst.src = self_;
    rst.dst = peer_;
    rst.sport = sport_;
    rst.dport = dport_;
    rst.seq = snd_nxt_;
    rst.ack = rcv_nxt_;
    rst.flags = kRst | kAck;
    Emit(std::move(rst));
  }
  state_ = TcpState::kReset;
  ReleaseClosedBuffers();
}

std::uint32_t TcpEndpoint::InFlight() const { return snd_nxt_ - snd_una_; }

void TcpEndpoint::ArmRto(sim::Duration rto) {
  CancelRto();
  current_rto_ = std::min(rto, cfg_.max_rto);
  rto_timer_ = sim_->After(current_rto_, [this]() { HandleRto(); });
}

void TcpEndpoint::CancelRto() { rto_timer_.Cancel(); }

void TcpEndpoint::HandleRto() {
  ++stats_.timeouts;
  ++retries_;
  const bool handshake = state_ == TcpState::kSynSent || state_ == TcpState::kSynRcvd;
  const int max_retries = handshake ? cfg_.max_syn_retries : cfg_.max_data_retries;
  if (retries_ > max_retries) {
    FailConnection();
    return;
  }
  ++stats_.retransmits;
  if (state_ == TcpState::kSynSent) {
    Emit(MakeSyn(self_, sport_, peer_, dport_, snd_isn_));
    ArmRto(cfg_.syn_rto * (1 << std::min(retries_, 5)));
    return;
  }
  if (state_ == TcpState::kSynRcvd) {
    Packet synack;
    synack.src = self_;
    synack.dst = peer_;
    synack.sport = sport_;
    synack.dport = dport_;
    synack.seq = snd_isn_;
    synack.ack = rcv_nxt_;
    synack.flags = kSyn | kAck;
    Emit(std::move(synack));
    ArmRto(cfg_.syn_rto * (1 << std::min(retries_, 5)));
    return;
  }
  // Data/FIN timeout: multiplicative decrease, retransmit from snd_una_.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1;
  dup_acks_ = 0;
  if (fin_sent_ && snd_una_ == fin_seq_ && sendq_.empty()) {
    // Only the FIN is outstanding.
    Packet fin;
    fin.src = self_;
    fin.dst = peer_;
    fin.sport = sport_;
    fin.dport = dport_;
    fin.seq = fin_seq_;
    fin.ack = rcv_nxt_;
    fin.flags = kFin | kAck;
    Emit(std::move(fin));
  } else if (!sendq_.empty()) {
    const std::uint32_t len =
        std::min<std::uint32_t>(cfg_.mss, static_cast<std::uint32_t>(sendq_.size()));
    SendSegment(0, len, /*retransmit=*/true);
  }
  ArmRto(current_rto_ * 2);
}

void TcpEndpoint::SendSegment(std::uint32_t seq_off, std::uint32_t len, bool retransmit) {
  Packet p;
  p.src = self_;
  p.dst = peer_;
  p.sport = sport_;
  p.dport = dport_;
  p.seq = snd_una_ + seq_off;
  p.ack = rcv_nxt_;
  p.flags = kAck;
  p.payload = sendq_.substr(seq_off, len);
  if (seq_off + len >= sendq_.size()) {
    p.flags |= kPsh;
  }
  if (retransmit) {
    // stats_.retransmits bumped by callers that know the cause.
  }
  Emit(std::move(p));
}

void TcpEndpoint::TrySendData() {
  const std::uint64_t window_bytes =
      static_cast<std::uint64_t>(cwnd_) * cfg_.mss;
  while (true) {
    const std::uint32_t in_flight = InFlight();
    const std::uint32_t next_off = in_flight;
    if (next_off >= sendq_.size()) {
      break;
    }
    if (static_cast<std::uint64_t>(in_flight) + cfg_.mss > window_bytes && in_flight > 0) {
      break;
    }
    const std::uint32_t len =
        std::min<std::uint32_t>(cfg_.mss, static_cast<std::uint32_t>(sendq_.size()) - next_off);
    SendSegment(next_off, len, /*retransmit=*/false);
    snd_nxt_ += len;
    if (!rto_timer_.pending()) {
      retries_ = 0;
      ArmRto(cfg_.initial_rto);
    }
  }
  MaybeSendFin();
}

void TcpEndpoint::MaybeSendFin() {
  if (!close_requested_ || fin_sent_) {
    return;
  }
  // FIN goes out only after all data is in flight (it still may retransmit).
  if (InFlight() < sendq_.size()) {
    return;
  }
  fin_sent_ = true;
  fin_seq_ = snd_nxt_;
  snd_nxt_ += 1;
  Packet fin;
  fin.src = self_;
  fin.dst = peer_;
  fin.sport = sport_;
  fin.dport = dport_;
  fin.seq = fin_seq_;
  fin.ack = rcv_nxt_;
  fin.flags = kFin | kAck;
  Emit(std::move(fin));
  if (!rto_timer_.pending()) {
    retries_ = 0;
    ArmRto(cfg_.initial_rto);
  }
  if (state_ == TcpState::kEstablished || state_ == TcpState::kSynRcvd) {
    state_ = TcpState::kFinWait1;
  } else if (state_ == TcpState::kCloseWait) {
    state_ = TcpState::kLastAck;
  }
}

void TcpEndpoint::SendAck() {
  Emit(MakeAck(self_, sport_, peer_, dport_, snd_nxt_, rcv_nxt_));
}

void TcpEndpoint::BecomeEstablished() {
  state_ = TcpState::kEstablished;
  retries_ = 0;
  CancelRto();
  if (on_connected_) {
    on_connected_();
  }
  TrySendData();
}

void TcpEndpoint::FailConnection() {
  CancelRto();
  state_ = TcpState::kReset;
  ReleaseClosedBuffers();
  if (on_failed_) {
    on_failed_();
  }
}

void TcpEndpoint::ReleaseClosedBuffers() {
  // A terminal endpoint (TIME_WAIT, closed, reset) never transmits or
  // reassembles again, but owners keep it around — server connections linger
  // through TIME_WAIT and browser fetches through the tuple-reuse window. At
  // high load those windows hold tens of thousands of endpoints, and the send
  // queue's capacity (a full response; erase() keeps capacity) dominates RSS.
  std::string().swap(sendq_);
  ooo_.clear();
}

void TcpEndpoint::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  CancelRto();
  ReleaseClosedBuffers();
  // The handle matters: a TIME_WAIT endpoint can be destroyed before the
  // timer fires (port reuse replaces the connection), and an unowned timer
  // would then run against a freed endpoint.
  time_wait_timer_ = sim_->After(cfg_.time_wait, [this]() {
    if (state_ == TcpState::kTimeWait) {
      state_ = TcpState::kClosed;
      if (on_closed_) {
        on_closed_();
      }
    }
  });
}

void TcpEndpoint::ProcessAck(const Packet& p) {
  if (!p.ack_flag()) {
    return;
  }
  const std::uint32_t ack = p.ack;
  if (SeqGt(ack, snd_nxt_)) {
    return;  // Acks data we never sent; ignore.
  }
  if (SeqGt(ack, snd_una_)) {
    std::uint32_t newly_acked = ack - snd_una_;
    // The FIN consumes one sequence number not present in sendq_.
    std::uint32_t data_acked = newly_acked;
    if (fin_sent_ && SeqGeq(ack, fin_seq_ + 1)) {
      data_acked = std::min<std::uint32_t>(data_acked, static_cast<std::uint32_t>(sendq_.size()));
    }
    data_acked = std::min<std::uint32_t>(data_acked, static_cast<std::uint32_t>(sendq_.size()));
    sendq_.erase(0, data_acked);
    snd_una_ = ack;
    dup_acks_ = 0;
    retries_ = 0;
    // cwnd growth: slow start below ssthresh, else ~1 segment per RTT.
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1;
    } else {
      cwnd_ += 1.0 / std::max(cwnd_, 1.0);
    }
    if (InFlight() == 0) {
      CancelRto();
    } else {
      ArmRto(cfg_.initial_rto);
    }
    // FIN fully acknowledged?
    if (fin_sent_ && SeqGeq(snd_una_, fin_seq_ + 1)) {
      if (state_ == TcpState::kFinWait1) {
        state_ = fin_received_ ? TcpState::kTimeWait : TcpState::kFinWait2;
        if (state_ == TcpState::kTimeWait) {
          EnterTimeWait();
        }
      } else if (state_ == TcpState::kLastAck) {
        CancelRto();
        state_ = TcpState::kClosed;
        ReleaseClosedBuffers();
        if (on_closed_) {
          on_closed_();
        }
        return;
      } else if (state_ == TcpState::kClosing) {
        EnterTimeWait();
      }
    }
    TrySendData();
  } else if (ack == snd_una_ && InFlight() > 0 && p.payload.empty() && !p.syn() && !p.fin()) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !sendq_.empty()) {
      ++stats_.fast_retransmits;
      ++stats_.retransmits;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      const std::uint32_t len =
          std::min<std::uint32_t>(cfg_.mss, static_cast<std::uint32_t>(sendq_.size()));
      SendSegment(0, len, /*retransmit=*/true);
    }
  }
}

void TcpEndpoint::ProcessPayload(const Packet& p) {
  if (p.payload.empty()) {
    return;
  }
  const std::uint32_t seg_seq = p.seq;
  const auto seg_len = static_cast<std::uint32_t>(p.payload.size());
  if (SeqLeq(seg_seq + seg_len, rcv_nxt_)) {
    SendAck();  // Entirely old; re-ack so the peer makes progress.
    return;
  }
  if (SeqGt(seg_seq, rcv_nxt_)) {
    ooo_[seg_seq] = p.payload;  // Future segment; stash and dup-ack.
    SendAck();
    return;
  }
  // Overlapping or exactly in order: trim the old prefix.
  const std::uint32_t skip = rcv_nxt_ - seg_seq;
  std::string_view fresh = p.payload.view();
  fresh.remove_prefix(skip);
  rcv_nxt_ += static_cast<std::uint32_t>(fresh.size());
  stats_.bytes_delivered += fresh.size();
  if (on_data_) {
    on_data_(fresh);
  }
  // Drain any now-contiguous out-of-order segments.
  auto it = ooo_.begin();
  while (it != ooo_.end()) {
    const std::uint32_t s = it->first;
    const auto len = static_cast<std::uint32_t>(it->second.size());
    if (SeqGt(s, rcv_nxt_)) {
      break;
    }
    if (SeqGt(s + len, rcv_nxt_)) {
      std::string_view tail = it->second.view();
      tail.remove_prefix(rcv_nxt_ - s);
      rcv_nxt_ += static_cast<std::uint32_t>(tail.size());
      stats_.bytes_delivered += tail.size();
      if (on_data_) {
        on_data_(tail);
      }
    }
    it = ooo_.erase(it);
  }
  SendAck();
}

void TcpEndpoint::ProcessFin(const Packet& p) {
  if (!p.fin()) {
    return;
  }
  const std::uint32_t fin_seq = p.seq + static_cast<std::uint32_t>(p.payload.size());
  if (fin_seq != rcv_nxt_) {
    SendAck();  // FIN not yet in order (missing data before it).
    return;
  }
  if (fin_received_) {
    SendAck();
    return;
  }
  fin_received_ = true;
  rcv_nxt_ += 1;
  SendAck();
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      if (on_closed_) {
        on_closed_();
      }
      if (close_requested_) {
        MaybeSendFin();
      }
      break;
    case TcpState::kFinWait1:
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      EnterTimeWait();
      if (on_closed_) {
        on_closed_();
      }
      break;
    default:
      break;
  }
}

void TcpEndpoint::HandlePacket(const Packet& p) {
  ++stats_.segments_received;
  if (p.cookie != 0) {
    echo_cookie_ = p.cookie;  // Remember the peer's latest flow token.
  }
  if (p.rst()) {
    CancelRto();
    state_ = TcpState::kReset;
    ReleaseClosedBuffers();
    if (on_reset_) {
      on_reset_();
    }
    return;
  }

  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kReset:
      return;

    case TcpState::kSynSent: {
      if (p.syn() && p.ack_flag() && p.ack == snd_isn_ + 1) {
        rcv_isn_ = p.seq;
        rcv_nxt_ = p.seq + 1;
        snd_una_ = p.ack;
        SendAck();
        BecomeEstablished();
      }
      return;
    }

    case TcpState::kSynRcvd: {
      if (p.syn() && !p.ack_flag()) {
        // Retransmitted SYN: re-send SYN-ACK.
        Packet synack;
        synack.src = self_;
        synack.dst = peer_;
        synack.sport = sport_;
        synack.dport = dport_;
        synack.seq = snd_isn_;
        synack.ack = rcv_nxt_;
        synack.flags = kSyn | kAck;
        Emit(std::move(synack));
        return;
      }
      if (p.ack_flag() && p.ack == snd_isn_ + 1) {
        snd_una_ = p.ack;
        BecomeEstablished();
        // The handshake-completing ACK may carry data (and even a FIN).
        ProcessPayload(p);
        ProcessFin(p);
      }
      return;
    }

    default:
      break;
  }

  // Established and closing states.
  if (p.syn() && p.ack_flag()) {
    // Duplicate SYN-ACK after we are established: re-ack.
    SendAck();
    return;
  }
  ProcessAck(p);
  if (state_ == TcpState::kClosed || state_ == TcpState::kReset) {
    return;
  }
  ProcessPayload(p);
  ProcessFin(p);
}

}  // namespace net
