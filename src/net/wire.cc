#include "src/net/wire.h"

#include <cstring>

namespace net {
namespace {

constexpr std::size_t kIpv4HeaderLen = 20;
constexpr std::size_t kTcpHeaderLen = 20;
constexpr std::uint8_t kProtoTcp = 6;

void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

void PutU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

void Fail(std::string* error, const char* msg) {
  if (error != nullptr) {
    *error = msg;
  }
}

}  // namespace

void ByteWriter::U8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::U16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::U32(std::uint32_t v) {
  U16(static_cast<std::uint16_t>(v >> 16));
  U16(static_cast<std::uint16_t>(v & 0xffff));
}

void ByteWriter::U64(std::uint64_t v) {
  U32(static_cast<std::uint32_t>(v >> 32));
  U32(static_cast<std::uint32_t>(v & 0xffffffff));
}

void ByteWriter::Bytes(const std::string& s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  Bytes(s);
}

std::optional<std::uint8_t> ByteReader::U8() {
  if (pos_ + 1 > buf_.size()) {
    return std::nullopt;
  }
  return buf_[pos_++];
}

std::optional<std::uint16_t> ByteReader::U16() {
  if (pos_ + 2 > buf_.size()) {
    return std::nullopt;
  }
  std::uint16_t v = GetU16(&buf_[pos_]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::U32() {
  if (pos_ + 4 > buf_.size()) {
    return std::nullopt;
  }
  std::uint32_t v = GetU32(&buf_[pos_]);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::U64() {
  auto hi = U32();
  auto lo = U32();
  if (!hi || !lo) {
    return std::nullopt;
  }
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

std::optional<std::string> ByteReader::Bytes(std::size_t n) {
  if (pos_ + n > buf_.size()) {
    return std::nullopt;
  }
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

std::optional<std::string> ByteReader::Str() {
  auto n = U32();
  if (!n) {
    return std::nullopt;
  }
  return Bytes(*n);
}

std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> SerializePacket(const Packet& p) {
  const std::size_t total = kIpv4HeaderLen + kTcpHeaderLen + p.payload.size();
  std::vector<std::uint8_t> out(total, 0);
  std::uint8_t* ip = out.data();
  // IPv4 header.
  ip[0] = 0x45;                                          // version 4, IHL 5.
  PutU16(ip + 2, static_cast<std::uint16_t>(total));     // total length.
  ip[8] = 64;                                            // TTL.
  ip[9] = kProtoTcp;                                     // protocol.
  PutU32(ip + 12, p.src);
  PutU32(ip + 16, p.dst);
  PutU16(ip + 10, 0);
  PutU16(ip + 10, InternetChecksum(ip, kIpv4HeaderLen));

  // TCP header.
  std::uint8_t* tcp = out.data() + kIpv4HeaderLen;
  PutU16(tcp + 0, p.sport);
  PutU16(tcp + 2, p.dport);
  PutU32(tcp + 4, p.seq);
  PutU32(tcp + 8, p.ack);
  tcp[12] = 5 << 4;  // data offset 5 words.
  tcp[13] = p.flags;
  PutU16(tcp + 14, p.window);
  std::memcpy(tcp + kTcpHeaderLen, p.payload.data(), p.payload.size());

  // TCP checksum over pseudo-header + segment.
  const std::size_t seg_len = kTcpHeaderLen + p.payload.size();
  std::vector<std::uint8_t> pseudo(12 + seg_len, 0);
  PutU32(pseudo.data(), p.src);
  PutU32(pseudo.data() + 4, p.dst);
  pseudo[9] = kProtoTcp;
  PutU16(pseudo.data() + 10, static_cast<std::uint16_t>(seg_len));
  std::memcpy(pseudo.data() + 12, tcp, seg_len);
  PutU16(tcp + 16, InternetChecksum(pseudo.data(), pseudo.size()));
  return out;
}

std::optional<Packet> ParsePacket(const std::vector<std::uint8_t>& bytes, std::string* error) {
  if (bytes.size() < kIpv4HeaderLen + kTcpHeaderLen) {
    Fail(error, "datagram too short");
    return std::nullopt;
  }
  const std::uint8_t* ip = bytes.data();
  if ((ip[0] >> 4) != 4 || (ip[0] & 0x0f) != 5) {
    Fail(error, "unsupported IP version or options");
    return std::nullopt;
  }
  if (ip[9] != kProtoTcp) {
    Fail(error, "not TCP");
    return std::nullopt;
  }
  const std::size_t total = GetU16(ip + 2);
  if (total != bytes.size()) {
    Fail(error, "IP total length mismatch");
    return std::nullopt;
  }
  if (InternetChecksum(ip, kIpv4HeaderLen) != 0) {
    Fail(error, "bad IPv4 header checksum");
    return std::nullopt;
  }

  Packet p;
  p.src = GetU32(ip + 12);
  p.dst = GetU32(ip + 16);
  const std::uint8_t* tcp = bytes.data() + kIpv4HeaderLen;
  if ((tcp[12] >> 4) != 5) {
    Fail(error, "unsupported TCP options");
    return std::nullopt;
  }
  p.sport = GetU16(tcp + 0);
  p.dport = GetU16(tcp + 2);
  p.seq = GetU32(tcp + 4);
  p.ack = GetU32(tcp + 8);
  p.flags = tcp[13];
  p.window = GetU16(tcp + 14);
  const std::size_t seg_len = bytes.size() - kIpv4HeaderLen;

  // Validate TCP checksum over pseudo-header + segment.
  std::vector<std::uint8_t> pseudo(12 + seg_len, 0);
  PutU32(pseudo.data(), p.src);
  PutU32(pseudo.data() + 4, p.dst);
  pseudo[9] = kProtoTcp;
  PutU16(pseudo.data() + 10, static_cast<std::uint16_t>(seg_len));
  std::memcpy(pseudo.data() + 12, tcp, seg_len);
  if (InternetChecksum(pseudo.data(), pseudo.size()) != 0) {
    Fail(error, "bad TCP checksum");
    return std::nullopt;
  }
  p.payload = Payload(reinterpret_cast<const char*>(tcp + kTcpHeaderLen),
                      seg_len - kTcpHeaderLen);
  return p;
}

}  // namespace net
