// In-simulation packet representation.
//
// A Packet carries the IPv4/TCP fields the Yoda data path actually inspects
// and rewrites: addresses, ports, sequence/ack numbers and flags. The wire
// codec in src/net/wire.h can round-trip a Packet through real byte-level
// IPv4+TCP headers (with checksums) for components that want byte fidelity.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "src/net/payload.h"

namespace net {

using IpAddr = std::uint32_t;
using Port = std::uint16_t;

// Builds an address from dotted-quad components: MakeIp(10, 0, 0, 1).
constexpr IpAddr MakeIp(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
  return (static_cast<IpAddr>(a) << 24) | (static_cast<IpAddr>(b) << 16) |
         (static_cast<IpAddr>(c) << 8) | static_cast<IpAddr>(d);
}

std::string IpToString(IpAddr ip);

// TCP flag bits (subset the system uses).
enum TcpFlag : std::uint8_t {
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
};

// Connection identity as seen on the wire.
struct FiveTuple {
  IpAddr src = 0;
  IpAddr dst = 0;
  Port sport = 0;
  Port dport = 0;

  FiveTuple Reversed() const { return FiveTuple{dst, src, dport, sport}; }

  auto operator<=>(const FiveTuple&) const = default;

  std::string ToString() const;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const {
    std::size_t h = std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(t.src) << 32) | t.dst);
    std::size_t h2 =
        std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(t.sport) << 16) | t.dport);
    return h ^ (h2 + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};

struct Packet {
  IpAddr src = 0;
  IpAddr dst = 0;
  Port sport = 0;
  Port dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  // Shared immutable bytes: copying a Packet (or substr-ing the payload)
  // never deep-copies the payload; see src/net/payload.h.
  Payload payload;

  // IP-in-IP encapsulation: when non-zero the fabric routes on this outer
  // destination while the inner header (src/dst above) is preserved. Used by
  // the L4 mux to deliver VIP traffic to a chosen L7 instance.
  IpAddr encap_dst = 0;

  // Monotonic id assigned by the network on first send; for tracing only.
  std::uint64_t trace_id = 0;

  // Stateless-LB flow token (models the SYN-cookie ISN plus the TCP
  // timestamp-option echo): the LB stamps a signed claim on packets toward
  // the client, the client's TCP echoes the last token it saw on everything
  // it sends back, and any LB instance can recover the flow's backend and
  // splice offsets from it without a store lookup. 0 = no token.
  std::uint64_t cookie = 0;

  bool has(TcpFlag f) const { return (flags & f) != 0; }
  bool syn() const { return has(kSyn); }
  bool ack_flag() const { return has(kAck); }
  bool fin() const { return has(kFin); }
  bool rst() const { return has(kRst); }

  FiveTuple tuple() const { return FiveTuple{src, dst, sport, dport}; }

  // Sequence space consumed by this segment (payload plus SYN/FIN flags).
  std::uint32_t SeqSpace() const {
    return static_cast<std::uint32_t>(payload.size()) + (syn() ? 1u : 0u) + (fin() ? 1u : 0u);
  }

  std::string ToString() const;
};

// Serial-number arithmetic (RFC 1982 style) for 32-bit TCP sequence numbers.
inline bool SeqLt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool SeqLeq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool SeqGt(std::uint32_t a, std::uint32_t b) { return SeqLt(b, a); }
inline bool SeqGeq(std::uint32_t a, std::uint32_t b) { return SeqLeq(b, a); }

// Convenience constructors for common segment shapes.
Packet MakeSyn(IpAddr src, Port sport, IpAddr dst, Port dport, std::uint32_t isn);
Packet MakeSynAck(const Packet& syn, std::uint32_t isn);
Packet MakeAck(IpAddr src, Port sport, IpAddr dst, Port dport, std::uint32_t seq,
               std::uint32_t ack);
Packet MakeRst(const Packet& in_reply_to);

}  // namespace net

#endif  // SRC_NET_PACKET_H_
