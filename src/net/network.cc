#include "src/net/network.h"

#include <cassert>
#include <utility>

namespace net {

Network::Endpoint& Network::EndpointMap::Upsert(IpAddr ip) {
  assert(ip != 0 && "0.0.0.0 is the empty-bucket sentinel");
  if ((size_ + 1) * 10 > buckets_.size() * 7) {  // Keep load under 0.7.
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, Bucket{});
    mask_ = buckets_.size() - 1;
    for (const Bucket& b : old) {
      if (b.key != 0) {
        std::size_t i = Home(b.key);
        while (buckets_[i].key != 0) {
          i = (i + 1) & mask_;
        }
        buckets_[i] = b;
      }
    }
  }
  std::size_t i = Home(ip);
  while (buckets_[i].key != 0 && buckets_[i].key != ip) {
    i = (i + 1) & mask_;
  }
  if (buckets_[i].key == 0) {
    buckets_[i].key = ip;
    ++size_;
  }
  return buckets_[i].ep;
}

void Network::EndpointMap::Erase(IpAddr ip) {
  std::size_t i = Home(ip);
  while (buckets_[i].key != ip) {
    if (buckets_[i].key == 0) {
      return;
    }
    i = (i + 1) & mask_;
  }
  // Backward-shift deletion: close the probe gap so later cluster members
  // whose home precedes the hole stay reachable.
  buckets_[i] = Bucket{};
  --size_;
  for (std::size_t j = (i + 1) & mask_; buckets_[j].key != 0; j = (j + 1) & mask_) {
    const std::size_t home = Home(buckets_[j].key);
    if (((j - home) & mask_) >= ((j - i) & mask_)) {
      buckets_[i] = buckets_[j];
      buckets_[j] = Bucket{};
      i = j;
    }
  }
}

void Network::Attach(IpAddr ip, Node* node, Region region) {
  endpoints_.Upsert(ip) = Endpoint{node, region, false};
}

void Network::Detach(IpAddr ip) { endpoints_.Erase(ip); }

void Network::SetNodeDown(IpAddr ip, bool down) {
  Endpoint* ep = endpoints_.Find(ip);
  if (ep != nullptr) {
    ep->down = down;
    return;
  }
  if (down) {
    // Marking an unattached address down is remembered (it stays unroutable
    // either way, but IsDown must report it).
    endpoints_.Upsert(ip) = Endpoint{nullptr, Region::kDatacenter, true};
  }
}

void Network::RestartNode(IpAddr ip) {
  Endpoint* ep = endpoints_.Find(ip);
  if (ep == nullptr || ep->node == nullptr) {
    return;
  }
  ep->node->OnColdRestart();
  ep->down = false;
}

bool Network::ProbePath(IpAddr src, IpAddr dst) {
  const Endpoint* ep = endpoints_.Find(dst);
  if (ep == nullptr || ep->node == nullptr || ep->down) {
    return false;
  }
  if (fault_observer_ != nullptr) {
    Packet probe;
    probe.src = src;
    probe.dst = dst;
    probe.flags = kAck;  // Plain keep-alive shape; gray SYN-filters miss it.
    if (fault_observer_->OnSend(probe, dst).drop) {
      return false;
    }
  }
  return true;
}

void Network::SetLatency(Region a, Region b, sim::Duration base, sim::Duration jitter) {
  // The model is symmetric; fill both orders so the hot path indexes directly.
  latency_[static_cast<int>(a)][static_cast<int>(b)] = LatencySpec{base, jitter};
  latency_[static_cast<int>(b)][static_cast<int>(a)] = LatencySpec{base, jitter};
}

Region Network::RegionOf(IpAddr ip) const {
  const Endpoint* ep = endpoints_.Find(ip);
  return ep == nullptr ? Region::kDatacenter : ep->region;
}

sim::Duration Network::DeliveryLatency(Region src_region, IpAddr dst) {
  const LatencySpec& spec =
      latency_[static_cast<int>(src_region)][static_cast<int>(RegionOf(dst))];
  sim::Duration jitter = 0;
  if (spec.jitter > 0) {
    jitter = static_cast<sim::Duration>(rng_.UniformDouble() * static_cast<double>(spec.jitter));
  }
  return spec.base + jitter;
}

std::uint32_t Network::AcquireSlot(Packet&& packet) {
  if (pool_free_.empty()) {
    pool_.push_back(std::move(packet));
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }
  const std::uint32_t slot = pool_free_.back();
  pool_free_.pop_back();
  pool_[slot] = std::move(packet);
  return slot;
}

void Network::ReleaseSlot(std::uint32_t slot) {
  // Drop the payload's buffer reference promptly; the POD fields are dead
  // until the slot is reused (AcquireSlot move-assigns a whole Packet).
  pool_[slot].payload = Payload();
  pool_free_.push_back(slot);
  if (++releases_since_trim_ >= 4096) {
    releases_since_trim_ = 0;
    TrimPoolIfBloated();
  }
}

void Network::TrimPoolIfBloated() {
  // A traffic burst grows the pool to its high-water in-flight count and the
  // deque then pins that footprint forever. When the freelist dwarfs the
  // in-flight set, drop the wholly-free suffix — only the suffix, because
  // in-flight slot indices are baked into scheduled delivery events and
  // shrinking a deque at the end is the one operation that leaves references
  // to surviving slots valid.
  constexpr std::size_t kFloorSlots = 1024;
  const std::size_t in_flight = pool_.size() - pool_free_.size();
  if (pool_free_.size() < (std::size_t{1} << 13) ||
      pool_free_.size() < 3 * (in_flight + 1)) {
    return;
  }
  std::vector<bool> is_free(pool_.size(), false);
  for (const std::uint32_t s : pool_free_) {
    is_free[s] = true;
  }
  std::size_t keep = pool_.size();
  while (keep > kFloorSlots && is_free[keep - 1]) {
    --keep;
  }
  if (keep == pool_.size()) {
    return;
  }
  pool_.resize(keep);
  std::vector<std::uint32_t> survivors;
  survivors.reserve(pool_free_.size());
  for (const std::uint32_t s : pool_free_) {
    if (s < keep) {
      survivors.push_back(s);
    }
  }
  pool_free_ = std::move(survivors);
}

void Network::Send(Packet&& packet) {
  ++stats_.sent;
  if (packet.trace_id == 0) {
    packet.trace_id = next_trace_id_++;
  }
  // The packet enters the pool before any verdict so every drop path —
  // fault, loss, and the delivery-time unroutable/down checks — returns its
  // slot through the same ReleaseSlot gate.
  const std::uint32_t slot = AcquireSlot(std::move(packet));
  const Packet& p = pool_[slot];
  const IpAddr route_dst = p.encap_dst != 0 ? p.encap_dst : p.dst;
  // The fault observer runs first (the cut cable beats the weather) and with
  // its own RNG, so an observer that never fires leaves the network's
  // conditional draws — loss only when loss_rate_ > 0, jitter only when the
  // pair's jitter > 0 — exactly where an observer-less run would have them.
  FaultVerdict fault;
  if (fault_observer_ != nullptr) {
    fault = fault_observer_->OnSend(p, route_dst);
    if (fault.drop) {
      ++stats_.dropped_fault;
      ReleaseSlot(slot);
      return;
    }
  }
  if (loss_rate_ > 0 && rng_.Bernoulli(loss_rate_)) {
    ++stats_.dropped_loss;
    ReleaseSlot(slot);
    return;
  }
  // Encapsulated packets are forwarded by the L4 mux, which lives in the
  // datacenter — the inner source's region must not be charged again.
  const Region src_region = p.encap_dst != 0 ? Region::kDatacenter : RegionOf(p.src);
  const sim::Duration latency = DeliveryLatency(src_region, route_dst) + fault.extra_delay;
  sim_->AfterRaw(latency, &Network::DeliverTrampoline, this, slot);
}

void Network::DeliverTrampoline(void* ctx, std::uint64_t arg) {
  static_cast<Network*>(ctx)->Deliver(static_cast<std::uint32_t>(arg));
}

void Network::Deliver(std::uint32_t slot) {
  // Route on the slot's packet in place; a deque keeps this reference valid
  // even if HandlePacket reentrantly Sends and grows the pool.
  const Packet& p = pool_[slot];
  const IpAddr route_dst = p.encap_dst != 0 ? p.encap_dst : p.dst;
  const Endpoint* ep = endpoints_.Find(route_dst);
  if (ep == nullptr || ep->node == nullptr) {
    ++stats_.dropped_unroutable;
    ReleaseSlot(slot);
    return;
  }
  if (ep->down) {
    ++stats_.dropped_down;
    ReleaseSlot(slot);
    return;
  }
  ++stats_.delivered;
  if (tap_) {
    tap_(sim_->now(), p);
  }
  ep->node->HandlePacket(p);
  ReleaseSlot(slot);
}

}  // namespace net
