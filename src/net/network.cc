#include "src/net/network.h"

#include <algorithm>
#include <utility>

namespace net {
namespace {

std::uint16_t RegionPairKey(Region a, Region b) {
  auto x = static_cast<std::uint16_t>(a);
  auto y = static_cast<std::uint16_t>(b);
  if (x > y) {
    std::swap(x, y);
  }
  return static_cast<std::uint16_t>((x << 8) | y);
}

}  // namespace

void Network::Attach(IpAddr ip, Node* node, Region region) {
  nodes_[ip] = node;
  regions_[ip] = region;
  down_.erase(ip);
}

void Network::Detach(IpAddr ip) {
  nodes_.erase(ip);
  regions_.erase(ip);
  down_.erase(ip);
}

void Network::SetNodeDown(IpAddr ip, bool down) {
  if (down) {
    down_[ip] = true;
  } else {
    down_.erase(ip);
  }
}

void Network::RestartNode(IpAddr ip) {
  auto it = nodes_.find(ip);
  if (it == nodes_.end()) {
    return;
  }
  it->second->OnColdRestart();
  down_.erase(ip);
}

bool Network::ProbePath(IpAddr src, IpAddr dst) {
  if (!nodes_.contains(dst) || down_.contains(dst)) {
    return false;
  }
  if (fault_hook_) {
    Packet probe;
    probe.src = src;
    probe.dst = dst;
    probe.flags = kAck;  // Plain keep-alive shape; gray SYN-filters miss it.
    if (fault_hook_(probe, dst).drop) {
      return false;
    }
  }
  return true;
}

void Network::SetLatency(Region a, Region b, sim::Duration base, sim::Duration jitter) {
  latency_[RegionPairKey(a, b)] = LatencySpec{base, jitter};
}

Region Network::RegionOf(IpAddr ip) const {
  auto it = regions_.find(ip);
  return it == regions_.end() ? Region::kDatacenter : it->second;
}

sim::Duration Network::DeliveryLatency(Region src_region, IpAddr dst) {
  LatencySpec spec;
  auto it = latency_.find(RegionPairKey(src_region, RegionOf(dst)));
  if (it != latency_.end()) {
    spec = it->second;
  }
  sim::Duration jitter = 0;
  if (spec.jitter > 0) {
    jitter = static_cast<sim::Duration>(rng_.UniformDouble() * static_cast<double>(spec.jitter));
  }
  return spec.base + jitter;
}

void Network::Send(Packet packet) {
  ++stats_.sent;
  if (packet.trace_id == 0) {
    packet.trace_id = next_trace_id_++;
  }
  const IpAddr route_dst = packet.encap_dst != 0 ? packet.encap_dst : packet.dst;
  // The fault hook runs first (the cut cable beats the weather) and with its
  // own RNG, so a hook that never fires leaves the network's conditional
  // draws — loss only when loss_rate_ > 0, jitter only when the pair's
  // jitter > 0 — exactly where a hook-less run would have them.
  FaultVerdict fault;
  if (fault_hook_) {
    fault = fault_hook_(packet, route_dst);
    if (fault.drop) {
      ++stats_.dropped_fault;
      return;
    }
  }
  if (loss_rate_ > 0 && rng_.Bernoulli(loss_rate_)) {
    ++stats_.dropped_loss;
    return;
  }
  // Encapsulated packets are forwarded by the L4 mux, which lives in the
  // datacenter — the inner source's region must not be charged again.
  const Region src_region =
      packet.encap_dst != 0 ? Region::kDatacenter : RegionOf(packet.src);
  const sim::Duration latency = DeliveryLatency(src_region, route_dst) + fault.extra_delay;
  sim_->After(latency, [this, route_dst, p = std::move(packet)]() {
    auto it = nodes_.find(route_dst);
    if (it == nodes_.end()) {
      ++stats_.dropped_unroutable;
      return;
    }
    if (down_.contains(route_dst)) {
      ++stats_.dropped_down;
      return;
    }
    ++stats_.delivered;
    if (tap_) {
      tap_(sim_->now(), p);
    }
    it->second->HandlePacket(p);
  });
}

}  // namespace net
