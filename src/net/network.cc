#include "src/net/network.h"

#include <cassert>
#include <utility>

#include "src/sim/sharded_sim.h"

namespace net {

Network::Endpoint& Network::EndpointMap::Upsert(IpAddr ip) {
  assert(ip != 0 && "0.0.0.0 is the empty-bucket sentinel");
  if ((size_ + 1) * 10 > buckets_.size() * 7) {  // Keep load under 0.7.
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, Bucket{});
    mask_ = buckets_.size() - 1;
    for (const Bucket& b : old) {
      if (b.key != 0) {
        std::size_t i = Home(b.key);
        while (buckets_[i].key != 0) {
          i = (i + 1) & mask_;
        }
        buckets_[i] = b;
      }
    }
  }
  std::size_t i = Home(ip);
  while (buckets_[i].key != 0 && buckets_[i].key != ip) {
    i = (i + 1) & mask_;
  }
  if (buckets_[i].key == 0) {
    buckets_[i].key = ip;
    ++size_;
  }
  return buckets_[i].ep;
}

void Network::EndpointMap::Erase(IpAddr ip) {
  std::size_t i = Home(ip);
  while (buckets_[i].key != ip) {
    if (buckets_[i].key == 0) {
      return;
    }
    i = (i + 1) & mask_;
  }
  // Backward-shift deletion: close the probe gap so later cluster members
  // whose home precedes the hole stay reachable.
  buckets_[i] = Bucket{};
  --size_;
  for (std::size_t j = (i + 1) & mask_; buckets_[j].key != 0; j = (j + 1) & mask_) {
    const std::size_t home = Home(buckets_[j].key);
    if (((j - home) & mask_) >= ((j - i) & mask_)) {
      buckets_[i] = buckets_[j];
      buckets_[j] = Bucket{};
      i = j;
    }
  }
}

Network::Network(sim::Simulator* simulator, std::uint64_t seed) : seed_(seed) {
  lanes_.push_back(std::make_unique<Lane>(simulator, seed, /*first_trace_id=*/1));
}

void Network::BindEngine(sim::ShardedSim* engine) {
  assert(engine != nullptr);
  assert(lanes_.size() == 1 && "BindEngine must run once, before any traffic");
  assert(lanes_[0]->sim == &engine->shard(0) &&
         "lane 0 must be the network's construction simulator");
  engine_ = engine;
  for (int s = 1; s < engine->shards(); ++s) {
    const std::uint64_t i = static_cast<std::uint64_t>(s);
    // Derived per-lane RNG stream and a disjoint trace-id space; both are
    // functions of the lane index only, never the worker count.
    lanes_.push_back(std::make_unique<Lane>(&engine->shard(s),
                                            seed_ + 0x9e3779b97f4a7c15ULL * i,
                                            (i << 48) + 1));
    lanes_.back()->endpoints = lanes_[0]->endpoints;
  }
}

void Network::SetShardResolver(std::function<int(IpAddr)> resolver) {
  shard_resolver_ = std::move(resolver);
}

int Network::ResolveShard(IpAddr ip) const {
  if (engine_ == nullptr || !shard_resolver_) {
    return 0;
  }
  const int s = shard_resolver_(ip);
  return (s >= 0 && s < static_cast<int>(lanes_.size())) ? s : 0;
}

int Network::OwnerShard(IpAddr ip) const {
  const Endpoint* ep = CurrentLane().endpoints.Find(ip);
  return ep != nullptr ? ep->owner : 0;
}

int Network::CurrentLaneIndex() const {
  if (engine_ == nullptr) {
    return 0;
  }
  const int s = sim::ShardedSim::current_shard();
  return s > 0 ? s : 0;
}

void Network::ApplyLaneWrite(std::function<void(int lane)> fn) {
  if (engine_ != nullptr && sim::ShardedSim::current_shard() >= 0) {
    // Inside the epoch loop other lanes' owners are running concurrently;
    // the write lands on every lane at the next barrier — a worker-count-
    // invariant instant (control-plane propagation, like route withdrawal).
    engine_->Broadcast([fn = std::move(fn)](int shard) { fn(shard); });
    return;
  }
  for (int l = 0; l < static_cast<int>(lanes_.size()); ++l) {
    fn(l);
  }
}

void Network::Attach(IpAddr ip, Node* node, Region region) {
  const int owner = ResolveShard(ip);
  ApplyLaneWrite([this, ip, node, region, owner](int lane) {
    lanes_[static_cast<std::size_t>(lane)]->endpoints.Upsert(ip) =
        Endpoint{node, region, false, owner};
  });
}

void Network::Detach(IpAddr ip) {
  ApplyLaneWrite(
      [this, ip](int lane) { lanes_[static_cast<std::size_t>(lane)]->endpoints.Erase(ip); });
}

void Network::SetNodeDown(IpAddr ip, bool down) {
  const int owner = ResolveShard(ip);
  ApplyLaneWrite([this, ip, down, owner](int lane) {
    EndpointMap& endpoints = lanes_[static_cast<std::size_t>(lane)]->endpoints;
    Endpoint* ep = endpoints.Find(ip);
    if (ep != nullptr) {
      ep->down = down;
      return;
    }
    if (down) {
      // Marking an unattached address down is remembered (it stays
      // unroutable either way, but IsDown must report it).
      endpoints.Upsert(ip) = Endpoint{nullptr, Region::kDatacenter, true, owner};
    }
  });
}

void Network::RestartNode(IpAddr ip) {
  ApplyLaneWrite([this, ip](int lane) {
    Endpoint* ep = lanes_[static_cast<std::size_t>(lane)]->endpoints.Find(ip);
    if (ep == nullptr || ep->node == nullptr) {
      return;
    }
    // Every lane revives its replica, but only the owning lane's arm may
    // touch the node object itself (ownership rule).
    if (ep->owner == lane) {
      ep->node->OnColdRestart();
    }
    ep->down = false;
  });
}

bool Network::ProbePath(IpAddr src, IpAddr dst) {
  const Endpoint* ep = CurrentLane().endpoints.Find(dst);
  if (ep == nullptr || ep->node == nullptr || ep->down) {
    return false;
  }
  if (fault_observer_ != nullptr) {
    Packet probe;
    probe.src = src;
    probe.dst = dst;
    probe.flags = kAck;  // Plain keep-alive shape; gray SYN-filters miss it.
    if (fault_observer_->OnSend(probe, dst).drop) {
      return false;
    }
  }
  return true;
}

void Network::SetLatency(Region a, Region b, sim::Duration base, sim::Duration jitter) {
  // The model is symmetric; fill both orders so the hot path indexes directly.
  latency_[static_cast<int>(a)][static_cast<int>(b)] = LatencySpec{base, jitter};
  latency_[static_cast<int>(b)][static_cast<int>(a)] = LatencySpec{base, jitter};
}

Region Network::RegionOf(const Lane& lane, IpAddr ip) const {
  const Endpoint* ep = lane.endpoints.Find(ip);
  return ep == nullptr ? Region::kDatacenter : ep->region;
}

sim::Duration Network::DeliveryLatency(Lane& lane, Region src_region, IpAddr dst) {
  const LatencySpec& spec =
      latency_[static_cast<int>(src_region)][static_cast<int>(RegionOf(lane, dst))];
  sim::Duration jitter = 0;
  if (spec.jitter > 0) {
    jitter =
        static_cast<sim::Duration>(lane.rng.UniformDouble() * static_cast<double>(spec.jitter));
  }
  return spec.base + jitter;
}

std::uint32_t Network::AcquireSlot(Lane& lane, Packet&& packet) {
  if (lane.pool_free.empty()) {
    lane.pool.push_back(std::move(packet));
    return static_cast<std::uint32_t>(lane.pool.size() - 1);
  }
  const std::uint32_t slot = lane.pool_free.back();
  lane.pool_free.pop_back();
  lane.pool[slot] = std::move(packet);
  return slot;
}

void Network::ReleaseSlot(Lane& lane, std::uint32_t slot) {
  // Drop the payload's buffer reference promptly; the POD fields are dead
  // until the slot is reused (AcquireSlot move-assigns a whole Packet).
  lane.pool[slot].payload = Payload();
  lane.pool_free.push_back(slot);
  if (++lane.releases_since_trim >= 4096) {
    lane.releases_since_trim = 0;
    TrimPoolIfBloated(lane);
  }
}

void Network::TrimPoolIfBloated(Lane& lane) {
  // A traffic burst grows the pool to its high-water in-flight count and the
  // deque then pins that footprint forever. When the freelist dwarfs the
  // in-flight set, drop the wholly-free suffix — only the suffix, because
  // in-flight slot indices are baked into scheduled delivery events and
  // shrinking a deque at the end is the one operation that leaves references
  // to surviving slots valid.
  constexpr std::size_t kFloorSlots = 1024;
  const std::size_t in_flight = lane.pool.size() - lane.pool_free.size();
  if (lane.pool_free.size() < (std::size_t{1} << 13) ||
      lane.pool_free.size() < 3 * (in_flight + 1)) {
    return;
  }
  std::vector<bool> is_free(lane.pool.size(), false);
  for (const std::uint32_t s : lane.pool_free) {
    is_free[s] = true;
  }
  std::size_t keep = lane.pool.size();
  while (keep > kFloorSlots && is_free[keep - 1]) {
    --keep;
  }
  if (keep == lane.pool.size()) {
    return;
  }
  lane.pool.resize(keep);
  std::vector<std::uint32_t> survivors;
  survivors.reserve(lane.pool_free.size());
  for (const std::uint32_t s : lane.pool_free) {
    if (s < keep) {
      survivors.push_back(s);
    }
  }
  lane.pool_free = std::move(survivors);
}

void Network::Send(Packet&& packet) {
  const std::uint32_t lane_idx = static_cast<std::uint32_t>(CurrentLaneIndex());
  Lane& lane = *lanes_[lane_idx];
  ++lane.stats.sent;
  if (packet.trace_id == 0) {
    packet.trace_id = lane.next_trace_id++;
  }
  // The packet enters the pool before any verdict so every drop path —
  // fault, loss, and the delivery-time unroutable/down checks — returns its
  // slot through the same ReleaseSlot gate.
  const std::uint32_t slot = AcquireSlot(lane, std::move(packet));
  const Packet& p = lane.pool[slot];
  const IpAddr route_dst = p.encap_dst != 0 ? p.encap_dst : p.dst;
  // The fault observer runs first (the cut cable beats the weather) and with
  // its own RNG, so an observer that never fires leaves the network's
  // conditional draws — loss only when loss_rate_ > 0, jitter only when the
  // pair's jitter > 0 — exactly where an observer-less run would have them.
  FaultVerdict fault;
  if (fault_observer_ != nullptr) {
    fault = fault_observer_->OnSend(p, route_dst);
    if (fault.drop) {
      ++lane.stats.dropped_fault;
      ReleaseSlot(lane, slot);
      return;
    }
  }
  if (loss_rate_ > 0 && lane.rng.Bernoulli(loss_rate_)) {
    ++lane.stats.dropped_loss;
    ReleaseSlot(lane, slot);
    return;
  }
  // Encapsulated packets are forwarded by the L4 mux, which lives in the
  // datacenter — the inner source's region must not be charged again.
  const Region src_region = p.encap_dst != 0 ? Region::kDatacenter : RegionOf(lane, p.src);
  const sim::Duration latency = DeliveryLatency(lane, src_region, route_dst) + fault.extra_delay;
  const Endpoint* ep = lane.endpoints.Find(route_dst);
  if (engine_ != nullptr && ep != nullptr && ep->owner != static_cast<int>(lane_idx)) {
    // Cross-shard: the packet travels as engine mail timestamped with the
    // full link latency. The epoch window is <= the minimum cross-shard
    // latency, so now()+latency is at or past the next barrier — the mail is
    // never clamped and lands at a worker-count-invariant instant.
    const int owner = ep->owner;
    Packet copy = p;
    ReleaseSlot(lane, slot);
    engine_->Post(owner, lane.sim->now() + latency,
                  [this, owner, copy]() mutable { DeliverCross(owner, std::move(copy)); });
    return;
  }
  // Same-shard (or unsharded, or unattached — dropped locally at delivery):
  // the legacy O(1) raw-event path. For lane 0 the packed arg equals the
  // plain slot index the pre-lane build scheduled, event for event.
  lane.sim->AfterRaw(latency, &Network::DeliverTrampoline, this,
                     (static_cast<std::uint64_t>(lane_idx) << 32) | slot);
}

void Network::DeliverTrampoline(void* ctx, std::uint64_t arg) {
  static_cast<Network*>(ctx)->Deliver(static_cast<std::uint32_t>(arg >> 32),
                                      static_cast<std::uint32_t>(arg));
}

void Network::DeliverCross(int lane_idx, Packet&& packet) {
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_idx)];
  const std::uint32_t slot = AcquireSlot(lane, std::move(packet));
  Deliver(static_cast<std::uint32_t>(lane_idx), slot);
}

void Network::Deliver(std::uint32_t lane_idx, std::uint32_t slot) {
  Lane& lane = *lanes_[lane_idx];
  // Route on the slot's packet in place; a deque keeps this reference valid
  // even if HandlePacket reentrantly Sends and grows the pool.
  const Packet& p = lane.pool[slot];
  const IpAddr route_dst = p.encap_dst != 0 ? p.encap_dst : p.dst;
  const Endpoint* ep = lane.endpoints.Find(route_dst);
  if (ep == nullptr || ep->node == nullptr) {
    ++lane.stats.dropped_unroutable;
    ReleaseSlot(lane, slot);
    return;
  }
  if (ep->down) {
    ++lane.stats.dropped_down;
    ReleaseSlot(lane, slot);
    return;
  }
#ifndef NDEBUG
  if (engine_ != nullptr) {
    // Ownership audit: packets mutate node state, so delivery must execute
    // on the endpoint's owning shard (or outside the epoch loop entirely).
    const int cur = sim::ShardedSim::current_shard();
    assert((cur < 0 || cur == static_cast<int>(lane_idx)) &&
           "packet delivered on a lane foreign to the executing shard");
    assert(ep->owner == static_cast<int>(lane_idx) &&
           "packet delivered off the destination's owning shard");
  }
#endif
  ++lane.stats.delivered;
  if (tap_) {
    tap_(lane.sim->now(), p);
  }
  ep->node->HandlePacket(p);
  ReleaseSlot(lane, slot);
}

const NetworkStats& Network::stats() const {
  if (lanes_.size() == 1) {
    return lanes_[0]->stats;
  }
  agg_stats_ = NetworkStats{};
  for (const auto& lane : lanes_) {
    agg_stats_.sent += lane->stats.sent;
    agg_stats_.delivered += lane->stats.delivered;
    agg_stats_.dropped_loss += lane->stats.dropped_loss;
    agg_stats_.dropped_down += lane->stats.dropped_down;
    agg_stats_.dropped_unroutable += lane->stats.dropped_unroutable;
    agg_stats_.dropped_fault += lane->stats.dropped_fault;
  }
  return agg_stats_;
}

std::size_t Network::packet_pool_slots() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->pool.size();
  }
  return n;
}

std::size_t Network::packet_pool_free() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) {
    n += lane->pool_free.size();
  }
  return n;
}

}  // namespace net
