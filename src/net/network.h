// The simulated network fabric.
//
// Nodes attach at IP addresses; Network::Send schedules delivery after a
// latency drawn from the (region-pair) latency model, with optional loss.
// A node marked down blackholes traffic, which is exactly how a crashed VM
// appears to its peers — in-flight state vanishes, packets are dropped and
// senders discover the failure only through their own timers.
//
// Virtual IPs are attached like any other address (the L4 mux attaches at
// the VIP), matching how VIP routes point at the L4 LB in a real DC.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace net {

// Anything that can receive packets from the fabric.
class Node {
 public:
  virtual ~Node() = default;
  virtual void HandlePacket(const Packet& packet) = 0;
};

// Coarse placement used by the latency model.
enum class Region : std::uint8_t {
  kDatacenter = 0,  // intra-DC VMs: LB instances, servers, TCPStore.
  kInternet = 1,    // external clients.
};

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_unroutable = 0;
};

class Network {
 public:
  Network(sim::Simulator* simulator, std::uint64_t seed)
      : sim_(simulator), rng_(seed) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches `node` at `ip`. Re-attaching replaces the previous binding.
  void Attach(IpAddr ip, Node* node, Region region = Region::kDatacenter);
  void Detach(IpAddr ip);
  bool IsAttached(IpAddr ip) const { return nodes_.contains(ip); }

  // Administrative up/down; a down node blackholes all traffic sent to it.
  void SetNodeDown(IpAddr ip, bool down);
  bool IsDown(IpAddr ip) const { return down_.contains(ip); }

  // Latency model. Delivery latency = one-way base for the (src,dst) region
  // pair + uniform jitter in [0, jitter].
  void SetLatency(Region a, Region b, sim::Duration base, sim::Duration jitter = 0);

  // Uniform random loss applied to every delivery (default 0).
  void set_loss_rate(double p) { loss_rate_ = p; }

  // Sends `packet` toward packet.dst. Drops silently if unroutable/down/lost.
  void Send(Packet packet);

  // Observes every delivered packet (for tcpdump-style traces in benches).
  using TapFn = std::function<void(sim::Time, const Packet&)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  const NetworkStats& stats() const { return stats_; }
  sim::Simulator* simulator() { return sim_; }

 private:
  sim::Duration DeliveryLatency(Region src_region, IpAddr dst);
  Region RegionOf(IpAddr ip) const;

  struct LatencySpec {
    sim::Duration base = sim::Usec(250);
    sim::Duration jitter = sim::Usec(50);
  };

  sim::Simulator* sim_;
  sim::Rng rng_;
  std::unordered_map<IpAddr, Node*> nodes_;
  std::unordered_map<IpAddr, Region> regions_;
  std::unordered_map<IpAddr, bool> down_;
  // Keyed by (min(a,b) << 1 | cross) — symmetric region pairs.
  std::unordered_map<std::uint16_t, LatencySpec> latency_;
  double loss_rate_ = 0;
  std::uint64_t next_trace_id_ = 1;
  NetworkStats stats_;
  TapFn tap_;
};

}  // namespace net

#endif  // SRC_NET_NETWORK_H_
