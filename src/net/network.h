// The simulated network fabric.
//
// Nodes attach at IP addresses; Network::Send schedules delivery after a
// latency drawn from the (region-pair) latency model, with optional loss.
// A node marked down blackholes traffic, which is exactly how a crashed VM
// appears to its peers — in-flight state vanishes, packets are dropped and
// senders discover the failure only through their own timers.
//
// Virtual IPs are attached like any other address (the L4 mux attaches at
// the VIP), matching how VIP routes point at the L4 LB in a real DC.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace net {

// Anything that can receive packets from the fabric.
class Node {
 public:
  virtual ~Node() = default;
  virtual void HandlePacket(const Packet& packet) = 0;
  // Invoked by Network::RestartNode before the node is revived: a cold
  // restart (rebooted VM) must drop all volatile per-connection state. The
  // default keeps everything (stateless nodes need no action).
  virtual void OnColdRestart() {}
};

// Coarse placement used by the latency model.
enum class Region : std::uint8_t {
  kDatacenter = 0,  // intra-DC VMs: LB instances, servers, TCPStore.
  kInternet = 1,    // external clients.
};

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_unroutable = 0;
  std::uint64_t dropped_fault = 0;  // Dropped by the fault-injection hook.
};

// Verdict of the fault-injection hook for one delivery attempt. The hook is
// consulted once per Send, before the network's own loss draw; any extra
// delay is added on top of the latency-model delivery time.
struct FaultVerdict {
  bool drop = false;
  sim::Duration extra_delay = 0;
};

class Network {
 public:
  Network(sim::Simulator* simulator, std::uint64_t seed)
      : sim_(simulator), rng_(seed) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Attaches `node` at `ip`. Re-attaching replaces the previous binding.
  void Attach(IpAddr ip, Node* node, Region region = Region::kDatacenter);
  void Detach(IpAddr ip);
  bool IsAttached(IpAddr ip) const { return nodes_.contains(ip); }

  // Administrative up/down; a down node blackholes all traffic sent to it.
  //
  // Restart semantics: `SetNodeDown(ip, false)` is a WARM revive — the
  // attached object keeps all of its state (models a healed partition or a
  // process that was paused, not killed; established TCP connections
  // survive). For a COLD restart (rebooted VM: endpoint state, flow tables
  // and caches are gone) use RestartNode, which calls Node::OnColdRestart
  // before reviving. Both are exposed so failure experiments can model
  // either recovery mode explicitly.
  void SetNodeDown(IpAddr ip, bool down);
  bool IsDown(IpAddr ip) const { return down_.contains(ip); }

  // Cold restart: clears the node's volatile state (Node::OnColdRestart),
  // then revives it. The attachment itself survives — a rebooted VM comes
  // back at the same address. No-op if nothing is attached at `ip`.
  void RestartNode(IpAddr ip);

  // Latency model. Delivery latency = one-way base for the (src,dst) region
  // pair + uniform jitter in [0, jitter].
  void SetLatency(Region a, Region b, sim::Duration base, sim::Duration jitter = 0);

  // Uniform random loss applied to every delivery (default 0).
  void set_loss_rate(double p) { loss_rate_ = p; }

  // Fault-injection hook (see src/fault). Consulted once per Send with the
  // packet and the resolved routing destination (outer encap header when
  // present). Determinism contract: the network's own RNG draws are
  // CONDITIONAL — the loss draw happens only when loss_rate_ > 0 and the
  // jitter draw only when the region pair's jitter > 0 — and the hook must
  // bring its own RNG (the fault plane does). Installing a hook that never
  // fires therefore leaves a same-seed run bit-identical to a hook-less run;
  // see net_test's determinism regression.
  using FaultHook = std::function<FaultVerdict(const Packet&, IpAddr route_dst)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  // Control-plane probe: true if a minimal packet src -> dst would currently
  // be delivered (dst attached, not down, and not dropped by the fault
  // hook). Draws nothing from the network RNG; loss decisions come from the
  // fault hook's own RNG, so probes are deterministic and do not perturb
  // data-path draws. The monitor's health checks are built on this.
  bool ProbePath(IpAddr src, IpAddr dst);

  // Sends `packet` toward packet.dst. Drops silently if unroutable/down/lost.
  void Send(Packet packet);

  // Observes every delivered packet (for tcpdump-style traces in benches).
  using TapFn = std::function<void(sim::Time, const Packet&)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  const NetworkStats& stats() const { return stats_; }
  sim::Simulator* simulator() { return sim_; }

 private:
  sim::Duration DeliveryLatency(Region src_region, IpAddr dst);
  Region RegionOf(IpAddr ip) const;

  struct LatencySpec {
    sim::Duration base = sim::Usec(250);
    sim::Duration jitter = sim::Usec(50);
  };

  sim::Simulator* sim_;
  sim::Rng rng_;
  std::unordered_map<IpAddr, Node*> nodes_;
  std::unordered_map<IpAddr, Region> regions_;
  std::unordered_map<IpAddr, bool> down_;
  // Keyed by (min(a,b) << 1 | cross) — symmetric region pairs.
  std::unordered_map<std::uint16_t, LatencySpec> latency_;
  double loss_rate_ = 0;
  std::uint64_t next_trace_id_ = 1;
  NetworkStats stats_;
  TapFn tap_;
  FaultHook fault_hook_;
};

}  // namespace net

#endif  // SRC_NET_NETWORK_H_
