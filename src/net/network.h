// The simulated network fabric.
//
// Nodes attach at IP addresses; Network::Send schedules delivery after a
// latency drawn from the (region-pair) latency model, with optional loss.
// A node marked down blackholes traffic, which is exactly how a crashed VM
// appears to its peers — in-flight state vanishes, packets are dropped and
// senders discover the failure only through their own timers.
//
// Virtual IPs are attached like any other address (the L4 mux attaches at
// the VIP), matching how VIP routes point at the L4 LB in a real DC.
//
// Shard-aware mode (BindEngine): one Network can span every shard of a
// sim::ShardedSim. Each shard gets a private Lane — its own RNG stream,
// trace-id space, stats, packet pool and a replica of the endpoint table —
// so the per-packet fast path touches no shared mutable state. A Send whose
// destination lives on the sending shard keeps the legacy O(1) AfterRaw
// path; a cross-shard Send posts the packet into the engine's SPSC mailboxes
// at now()+latency, which the epoch-barrier window (<= the minimum
// cross-shard latency) guarantees is never clamped — delivery lands at a
// worker-count-invariant instant. Without BindEngine there is exactly one
// lane and behavior is byte-identical to the pre-shard-aware build.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"

namespace sim {
class ShardedSim;
}

namespace net {

// Anything that can receive packets from the fabric.
class Node {
 public:
  virtual ~Node() = default;
  virtual void HandlePacket(const Packet& packet) = 0;
  // Invoked by Network::RestartNode before the node is revived: a cold
  // restart (rebooted VM) must drop all volatile per-connection state. The
  // default keeps everything (stateless nodes need no action).
  virtual void OnColdRestart() {}
};

// Coarse placement used by the latency model.
enum class Region : std::uint8_t {
  kDatacenter = 0,  // intra-DC VMs: LB instances, servers, TCPStore.
  kInternet = 1,    // external clients.
};

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_unroutable = 0;
  std::uint64_t dropped_fault = 0;  // Dropped by the fault-injection hook.
};

// Verdict of the fault-injection observer for one delivery attempt. The
// observer is consulted once per Send, before the network's own loss draw;
// any extra delay is added on top of the latency-model delivery time.
struct FaultVerdict {
  bool drop = false;
  sim::Duration extra_delay = 0;
};

// Fault-injection interface (see src/fault). A virtual call replaces the old
// std::function hook so consulting the fault plane on the per-packet fast
// path materializes no closure and allocates nothing.
//
// Determinism contract: the network's own RNG draws are CONDITIONAL — the
// loss draw happens only when loss_rate_ > 0 and the jitter draw only when
// the region pair's jitter > 0 — and the observer must bring its own RNG
// (the fault plane does). Installing an observer that never fires therefore
// leaves a same-seed run bit-identical to an observer-less run; see
// net_test's determinism regression.
class FaultObserver {
 public:
  virtual ~FaultObserver() = default;
  // Consulted once per Send with the packet and the resolved routing
  // destination (outer encap header when present).
  virtual FaultVerdict OnSend(const Packet& packet, IpAddr route_dst) = 0;
};

class Network {
 public:
  Network(sim::Simulator* simulator, std::uint64_t seed);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Spreads this network over every shard of `engine`: creates one Lane per
  // shard (lane 0 takes over this network's existing simulator/RNG/state, so
  // it must be &engine->shard(0)'s network view). Call before any Attach.
  void BindEngine(sim::ShardedSim* engine);
  // Maps an address to its owning shard; consulted once per Attach (and per
  // SetNodeDown upsert) to stamp Endpoint::owner. Unset resolves to shard 0.
  // Call before any Attach.
  void SetShardResolver(std::function<int(IpAddr)> resolver);
  bool sharded() const { return engine_ != nullptr; }
  // The owning shard of `ip` per the current endpoint table (lane-local
  // replica); 0 when unsharded or unattached.
  int OwnerShard(IpAddr ip) const;

  // Attaches `node` at `ip`. Re-attaching replaces the previous binding.
  // Sharded mode: from inside the epoch loop the write is broadcast and
  // lands on every lane at the next barrier; idle (setup) writes apply
  // immediately.
  void Attach(IpAddr ip, Node* node, Region region = Region::kDatacenter);
  void Detach(IpAddr ip);
  bool IsAttached(IpAddr ip) const {
    const Endpoint* ep = CurrentLane().endpoints.Find(ip);
    return ep != nullptr && ep->node != nullptr;
  }

  // Administrative up/down; a down node blackholes all traffic sent to it.
  //
  // Restart semantics: `SetNodeDown(ip, false)` is a WARM revive — the
  // attached object keeps all of its state (models a healed partition or a
  // process that was paused, not killed; established TCP connections
  // survive). For a COLD restart (rebooted VM: endpoint state, flow tables
  // and caches are gone) use RestartNode, which calls Node::OnColdRestart
  // before reviving. Both are exposed so failure experiments can model
  // either recovery mode explicitly.
  void SetNodeDown(IpAddr ip, bool down);
  bool IsDown(IpAddr ip) const {
    const Endpoint* ep = CurrentLane().endpoints.Find(ip);
    return ep != nullptr && ep->down;
  }

  // Cold restart: clears the node's volatile state (Node::OnColdRestart),
  // then revives it. The attachment itself survives — a rebooted VM comes
  // back at the same address. No-op if nothing is attached at `ip`.
  // Sharded mode: OnColdRestart runs only on the owning lane's barrier arm.
  void RestartNode(IpAddr ip);

  // Latency model. Delivery latency = one-way base for the (src,dst) region
  // pair + uniform jitter in [0, jitter]. Setup-time only (shared by lanes).
  void SetLatency(Region a, Region b, sim::Duration base, sim::Duration jitter = 0);

  // Uniform random loss applied to every delivery (default 0). Setup-time.
  void set_loss_rate(double p) { loss_rate_ = p; }

  // Installs (or clears, with nullptr) the fault-injection observer. The
  // observer must outlive its installation; the testbed owns both.
  void set_fault_observer(FaultObserver* observer) { fault_observer_ = observer; }

  // Control-plane probe: true if a minimal packet src -> dst would currently
  // be delivered (dst attached, not down, and not dropped by the fault
  // observer). Draws nothing from the network RNG; loss decisions come from
  // the fault plane's own RNG, so probes are deterministic and do not
  // perturb data-path draws. The monitor's health checks are built on this.
  // Sharded mode: answers from the probing shard's replica of the endpoint
  // table (down-state propagates at barriers, like real route withdrawal).
  bool ProbePath(IpAddr src, IpAddr dst);

  // Sends `packet` toward packet.dst (outer encap header when present).
  // Drops silently if unroutable/down/lost. Move-only on purpose: the packet
  // is moved into a pool slot that lives until delivery, so the fabric never
  // copies payload bytes and the delivery event is a raw (function pointer,
  // slot index) pair — no closure, no allocation. (The cross-shard path is
  // the one exception: the packet is copied into the mailbox closure.)
  void Send(Packet&& packet);

  // Observes every delivered packet (for tcpdump-style traces in benches).
  // Setup-time; unsupported (would race) in sharded mode.
  using TapFn = std::function<void(sim::Time, const Packet&)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  // Aggregated over lanes (sharded mode); read only while the engine is
  // idle. Single-lane (legacy) reads are the lane's live struct.
  const NetworkStats& stats() const;
  sim::Simulator* simulator() { return lanes_[0]->sim; }

  // Packet-pool gauges (for tests and leak spotting). A slot is acquired per
  // Send and released on delivery or on any drop — fault, loss, unroutable
  // or down — so in-flight is exactly the number of scheduled deliveries.
  // Summed over lanes in sharded mode.
  std::size_t packet_pool_slots() const;
  std::size_t packet_pool_free() const;
  std::size_t packets_in_flight() const {
    return packet_pool_slots() - packet_pool_free();
  }

 private:
  struct LatencySpec {
    sim::Duration base = sim::Usec(250);
    sim::Duration jitter = sim::Usec(50);
  };

  // Everything the fabric knows about one address: node, placement, admin
  // state, owning shard. One hash lookup per routing decision instead of
  // three parallel maps (a measured per-packet win; see bench_perf_core's
  // fabric_pps).
  struct Endpoint {
    Node* node = nullptr;
    Region region = Region::kDatacenter;
    bool down = false;
    int owner = 0;  // Owning shard (always 0 unsharded).
  };

  // Open-addressing IpAddr -> Endpoint table with power-of-two buckets and
  // linear probing: a per-packet lookup costs a multiply-shift and a short
  // probe instead of std::unordered_map's divide-by-prime bucket mapping.
  // Address 0 marks an empty bucket (0.0.0.0 is never attachable; it already
  // serves as the "no encap" sentinel in Packet).
  class EndpointMap {
   public:
    EndpointMap() : buckets_(kMinBuckets) {}

    Endpoint* Find(IpAddr ip) {
      for (std::size_t i = Home(ip);; i = (i + 1) & mask_) {
        if (buckets_[i].key == ip) {
          return &buckets_[i].ep;
        }
        if (buckets_[i].key == 0) {
          return nullptr;
        }
      }
    }
    const Endpoint* Find(IpAddr ip) const {
      return const_cast<EndpointMap*>(this)->Find(ip);
    }

    // Returns the entry for `ip`, default-constructed if absent.
    Endpoint& Upsert(IpAddr ip);
    void Erase(IpAddr ip);

   private:
    struct Bucket {
      IpAddr key = 0;
      Endpoint ep;
    };
    static constexpr std::size_t kMinBuckets = 64;

    std::size_t Home(IpAddr ip) const {
      // Fibonacci hashing; the high half of the product is well mixed.
      return static_cast<std::size_t>(
                 (static_cast<std::uint64_t>(ip) * 0x9E3779B97F4A7C15ull) >> 32) &
             mask_;
    }

    std::vector<Bucket> buckets_;
    std::size_t mask_ = kMinBuckets - 1;
    std::size_t size_ = 0;
  };

  // Per-shard slice of the fabric. Lane 0 is constructed from the Network's
  // (simulator, seed) arguments, so an unsharded network — exactly one lane
  // — executes the identical instruction/draw sequence the pre-lane build
  // did. Lanes 1..S-1 exist only after BindEngine; their RNG streams and
  // trace-id spaces are derived from the lane index, never the worker count.
  struct Lane {
    Lane(sim::Simulator* simulator, std::uint64_t seed, std::uint64_t first_trace_id)
        : sim(simulator), rng(seed), next_trace_id(first_trace_id) {}

    sim::Simulator* sim;
    sim::Rng rng;
    EndpointMap endpoints;  // Replica; all replicas converge at barriers.
    std::uint64_t next_trace_id;
    NetworkStats stats;
    // Freelist-backed pool of in-flight packets. A deque keeps slot
    // references stable while a HandlePacket callee reentrantly Sends
    // (which may grow the pool); released slots are reset so shared payload
    // buffers are returned promptly.
    std::deque<Packet> pool;
    std::vector<std::uint32_t> pool_free;
    // Amortizes the pool high-water trim (see TrimPoolIfBloated).
    std::size_t releases_since_trim = 0;
  };

  // The executing shard's lane; lane 0 outside the epoch loop or unsharded.
  int CurrentLaneIndex() const;
  Lane& CurrentLane() { return *lanes_[static_cast<std::size_t>(CurrentLaneIndex())]; }
  const Lane& CurrentLane() const { return const_cast<Network*>(this)->CurrentLane(); }
  int ResolveShard(IpAddr ip) const;
  // Applies a lane-replicated endpoint write (`fn(lane_idx)` mutates
  // lanes_[lane_idx]): immediately on every lane when idle/unsharded, else
  // broadcast so each lane applies it at the next barrier.
  void ApplyLaneWrite(std::function<void(int lane)> fn);

  sim::Duration DeliveryLatency(Lane& lane, Region src_region, IpAddr dst);
  Region RegionOf(const Lane& lane, IpAddr ip) const;
  std::uint32_t AcquireSlot(Lane& lane, Packet&& packet);
  void ReleaseSlot(Lane& lane, std::uint32_t slot);
  void TrimPoolIfBloated(Lane& lane);
  void Deliver(std::uint32_t lane_idx, std::uint32_t slot);
  void DeliverCross(int lane_idx, Packet&& packet);
  static void DeliverTrampoline(void* ctx, std::uint64_t arg);

  sim::ShardedSim* engine_ = nullptr;
  std::function<int(IpAddr)> shard_resolver_;
  std::uint64_t seed_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // lanes_[0] always exists.
  // Dense (src region, dst region) grid; symmetric, default-initialized so
  // unconfigured pairs keep the 250 us +- 50 us jitter default. Shared by
  // lanes: configured at setup, read-only while running.
  LatencySpec latency_[2][2];
  double loss_rate_ = 0;
  TapFn tap_;
  FaultObserver* fault_observer_ = nullptr;
  mutable NetworkStats agg_stats_;  // stats() aggregation cache.
};

}  // namespace net

#endif  // SRC_NET_NETWORK_H_
