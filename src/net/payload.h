// Cheaply-shareable immutable payload buffer.
//
// A Payload is a (shared buffer, offset, length) view: copying one is two
// pointer-sized copies plus a refcount bump, and substr() is O(1) because it
// shares the same underlying bytes. The packet plane moves Packets by value
// through the fabric, the L7 tunnel re-addresses and re-sequences segments
// without touching their bytes, and TCP reassembly stashes out-of-order
// segments — all of which used to deep-copy a std::string per hop and now
// share one allocation for the lifetime of the bytes.
//
// Payloads are immutable by construction: there is no way to mutate the
// bytes behind a live Payload, so sharing across packets, reassembly maps
// and the delivery pool is safe without copy-on-write machinery. To build
// bytes incrementally, build a std::string and convert once.

#ifndef SRC_NET_PAYLOAD_H_
#define SRC_NET_PAYLOAD_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace net {

class Payload {
 public:
  static constexpr std::size_t npos = std::string_view::npos;

  Payload() = default;

  // Implicit on purpose: `p.payload = sendq_.substr(...)` and
  // `p.payload = "abc"` are pervasive and safe (one allocation, then shared).
  Payload(std::string s) {
    if (!s.empty()) {
      buf_ = std::make_shared<const std::string>(std::move(s));
      len_ = buf_->size();
    }
  }
  Payload(std::string_view s) : Payload(std::string(s)) {}
  Payload(const char* s) : Payload(std::string(s)) {}
  Payload(const char* data, std::size_t len) : Payload(std::string(data, len)) {}

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const char* data() const { return buf_ == nullptr ? "" : buf_->data() + off_; }

  std::string_view view() const {
    return buf_ == nullptr ? std::string_view() : std::string_view(buf_->data() + off_, len_);
  }
  operator std::string_view() const { return view(); }

  // Materializes a private copy; for callers that need ownership of a
  // mutable string.
  std::string str() const { return std::string(view()); }

  char operator[](std::size_t i) const { return view()[i]; }

  // O(1): the result shares this payload's buffer.
  Payload substr(std::size_t pos, std::size_t count = npos) const {
    Payload out;
    if (pos >= len_) {
      return out;
    }
    out.buf_ = buf_;
    out.off_ = off_ + pos;
    out.len_ = std::min(count, len_ - pos);
    return out;
  }

  std::size_t find(std::string_view needle, std::size_t pos = 0) const {
    return view().find(needle, pos);
  }
  std::size_t find(char c, std::size_t pos = 0) const { return view().find(c, pos); }

  // One comparison operator (plus its C++20 rewrite) keeps overload
  // resolution unambiguous for Payload==Payload, ==string_view and
  // ==literal alike — everything funnels through the string_view conversion.
  bool operator==(std::string_view other) const { return view() == other; }

  friend std::ostream& operator<<(std::ostream& os, const Payload& p) { return os << p.view(); }

 private:
  std::shared_ptr<const std::string> buf_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

}  // namespace net

#endif  // SRC_NET_PAYLOAD_H_
