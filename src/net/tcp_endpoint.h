// A compact but real TCP endpoint for simulated clients and backend servers.
//
// Implements: three-way handshake (active and passive open), MSS
// segmentation, cumulative ACKs, out-of-order reassembly, retransmission
// timeout with exponential backoff, fast retransmit on three duplicate ACKs,
// slow-start/congestion-avoidance cwnd, FIN teardown and RST handling.
//
// Yoda instances deliberately do NOT use this class on the data path — the
// paper's point is that the L7 LB only speaks enough TCP to capture the
// header, then tunnels raw segments. This endpoint is what the *clients and
// servers* run, so that the LB's sequence-number surgery is exercised against
// a full TCP implementation (retransmissions included).

#ifndef SRC_NET_TCP_ENDPOINT_H_
#define SRC_NET_TCP_ENDPOINT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace net {

enum class TcpState {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
  kReset,
};

const char* TcpStateName(TcpState s);

struct TcpConfig {
  std::uint32_t mss = 1400;
  // Initial data RTO; the paper's Fig 12(b) timeline shows the backend
  // retransmitting at 300 ms then 600 ms, i.e. a 300 ms base with 2x backoff.
  sim::Duration initial_rto = sim::Msec(300);
  sim::Duration max_rto = sim::Sec(60);
  // SYN retransmission interval (Ubuntu default observed in the paper: 3 s).
  sim::Duration syn_rto = sim::Sec(3);
  int max_syn_retries = 6;
  int max_data_retries = 10;
  std::uint32_t initial_cwnd_segments = 10;
  sim::Duration time_wait = sim::Sec(1);
};

struct TcpEndpointStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
};

class TcpEndpoint {
 public:
  using PacketSink = std::function<void(Packet)>;
  using DataFn = std::function<void(std::string_view)>;
  using EventFn = std::function<void()>;

  TcpEndpoint(sim::Simulator* simulator, PacketSink sink, TcpConfig config = {});
  ~TcpEndpoint();
  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  // Active open toward peer:dport from self:sport with initial seq `isn`.
  void Connect(IpAddr self, Port sport, IpAddr peer, Port dport, std::uint32_t isn);

  // Passive open: adopt an incoming SYN (server side) and reply SYN-ACK with
  // initial seq `isn`.
  void AcceptFrom(const Packet& syn, std::uint32_t isn);

  // Queues application bytes for transmission (valid once connected or while
  // connecting; bytes flow when ESTABLISHED).
  void Send(std::string data);

  // Graceful close: FIN after queued data drains.
  void Close();

  // Hard abort: emits RST (if the connection ever got off the ground).
  void Abort();

  // Feeds a packet addressed to this endpoint.
  void HandlePacket(const Packet& packet);

  // --- callbacks (all optional) ---
  void set_on_connected(EventFn fn) { on_connected_ = std::move(fn); }
  void set_on_data(DataFn fn) { on_data_ = std::move(fn); }
  void set_on_closed(EventFn fn) { on_closed_ = std::move(fn); }
  void set_on_reset(EventFn fn) { on_reset_ = std::move(fn); }
  // Fired when retransmission gives up (peer unreachable).
  void set_on_failed(EventFn fn) { on_failed_ = std::move(fn); }

  TcpState state() const { return state_; }
  bool established() const { return state_ == TcpState::kEstablished; }
  const TcpEndpointStats& stats() const { return stats_; }
  FiveTuple tuple() const { return FiveTuple{self_, peer_, sport_, dport_}; }
  std::uint32_t snd_isn() const { return snd_isn_; }
  std::uint32_t rcv_isn() const { return rcv_isn_; }
  std::uint32_t bytes_unacked() const { return static_cast<std::uint32_t>(sendq_.size()); }
  std::uint64_t echoed_cookie() const { return echo_cookie_; }

 private:
  void Emit(Packet p);
  void SendAck();
  void TrySendData();
  void SendSegment(std::uint32_t seq_off, std::uint32_t len, bool retransmit);
  void MaybeSendFin();
  void ArmRto(sim::Duration rto);
  void CancelRto();
  void ReleaseClosedBuffers();
  void HandleRto();
  void ProcessAck(const Packet& p);
  void ProcessPayload(const Packet& p);
  void ProcessFin(const Packet& p);
  void EnterTimeWait();
  void BecomeEstablished();
  void FailConnection();
  std::uint32_t InFlight() const;

  sim::Simulator* sim_;
  PacketSink sink_;
  TcpConfig cfg_;
  TcpState state_ = TcpState::kClosed;

  IpAddr self_ = 0;
  IpAddr peer_ = 0;
  Port sport_ = 0;
  Port dport_ = 0;

  // Send side. sendq_ holds bytes from snd_una_ onward; the first
  // (snd_nxt_ - snd_una_) of them are in flight.
  std::uint32_t snd_isn_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::string sendq_;
  bool close_requested_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Receive side.
  std::uint32_t rcv_isn_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  // Out-of-order segments by seq; Payload values share the sender's buffer
  // instead of deep-copying stashed bytes.
  std::map<std::uint32_t, Payload> ooo_;
  bool fin_received_ = false;

  // Congestion control (segment-granularity cwnd).
  double cwnd_ = 10;
  double ssthresh_ = 64;
  int dup_acks_ = 0;

  // Last non-zero flow token received from the peer; echoed on every
  // outgoing segment (models the TCP timestamp-option echo that carries the
  // stateless LB's SYN-cookie claims back through the client).
  std::uint64_t echo_cookie_ = 0;

  // Retransmission.
  sim::TimerHandle rto_timer_;
  sim::TimerHandle time_wait_timer_;
  sim::Duration current_rto_ = 0;
  int retries_ = 0;

  TcpEndpointStats stats_;

  EventFn on_connected_;
  DataFn on_data_;
  EventFn on_closed_;
  EventFn on_reset_;
  EventFn on_failed_;
};

}  // namespace net

#endif  // SRC_NET_TCP_ENDPOINT_H_
